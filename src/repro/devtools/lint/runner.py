"""Lint orchestration: parse once, run checkers, filter, format.

:func:`run_lint` is the library entry point (used by the test suite and
the CLI); :func:`main` adds argument handling for ``python -m repro
lint``.  Exit semantics: findings are always *reported*; the process
exit code is non-zero only under ``--fail-on-findings`` (what CI runs)
or on a usage/configuration error, so a local run never aborts a shell
pipeline mid-investigation.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from repro.devtools.lint import checkers as _checkers  # noqa: F401  (registers rules)
from repro.devtools.lint.baseline import DEFAULT_BASELINE, Baseline
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.project import DEFAULT_EXCLUDES, Project
from repro.devtools.lint.registry import all_rules, build_checkers, checker_for


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)  # actionable
    suppressed: int = 0  # silenced by inline directives
    baselined: int = 0  # silenced by the baseline file
    files: int = 0
    rules: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_json(self) -> dict:
        return {
            "findings": [finding.to_json() for finding in self.findings],
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "files": self.files,
            "rules": self.rules,
        }


def run_lint(
    root: Path | str = ".",
    paths: Optional[Sequence[str]] = None,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
) -> LintReport:
    """Lint ``paths`` (default: the whole tree) under ``root``.

    Returns a :class:`LintReport`; inline-suppressed and baselined
    findings are counted but not listed.  Files that fail to parse
    produce a ``SYNTAX`` finding rather than being silently skipped —
    a file the linter cannot read is a file whose invariants nobody is
    checking.
    """
    project = Project(Path(root), paths=paths, excludes=excludes)
    report = LintReport(files=len(project.files))
    report.rules = list(rules) if rules is not None else all_rules()
    for source in project.iter_files():
        if source.syntax_error is not None:
            report.findings.append(
                Finding(
                    rule="SYNTAX",
                    path=source.rel,
                    line=1,
                    message=f"file does not parse: {source.syntax_error}",
                    snippet="",
                )
            )
    for checker in build_checkers(list(report.rules)):
        for finding in checker.run(project):
            source = project.files.get(finding.path)
            if source is not None and source.is_suppressed(
                finding.rule, finding.line
            ):
                report.suppressed += 1
                continue
            if baseline is not None and baseline.matches(finding):
                report.baselined += 1
                continue
            report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report


def format_text(report: LintReport) -> str:
    lines = []
    for finding in report.findings:
        lines.append(f"{finding.location()}: {finding.rule}: {finding.message}")
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    summary = (
        f"{len(report.findings)} finding(s) in {report.files} file(s)"
        f" [{report.suppressed} suppressed, {report.baselined} baselined]"
    )
    lines.append(summary)
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    return json.dumps(report.to_json(), indent=2)


def list_rules_text() -> str:
    lines = []
    for rule in all_rules():
        checker = checker_for(rule)
        lines.append(f"{rule}: {checker.title}")
        if checker.invariant:
            lines.append(f"    invariant: {checker.invariant}")
    return "\n".join(lines)


def build_arg_parser(parser: Optional[argparse.ArgumentParser] = None) -> argparse.ArgumentParser:
    if parser is None:
        parser = argparse.ArgumentParser(prog="repro lint")
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: the whole repository)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="project root findings and the baseline are relative to",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="findings output format",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all registered)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="baseline file of accepted findings (relative to --root)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to accept every current finding",
    )
    parser.add_argument(
        "--fail-on-findings",
        action="store_true",
        help="exit non-zero when any unsuppressed finding remains (CI mode)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def execute(arguments: argparse.Namespace) -> tuple:
    """Run lint for parsed CLI arguments; returns ``(output, exit_code)``."""
    if arguments.list_rules:
        return list_rules_text(), 0
    root = Path(arguments.root).resolve()
    rules = (
        [rule.strip() for rule in arguments.rules.split(",") if rule.strip()]
        if arguments.rules
        else None
    )
    if rules:
        for rule in rules:
            checker_for(rule)  # raises KeyError with the known-rule list
    baseline_path = root / arguments.baseline
    baseline = None
    if not arguments.no_baseline and not arguments.update_baseline:
        baseline = Baseline.load(baseline_path)
    report = run_lint(
        root=root,
        paths=arguments.paths or None,
        rules=rules,
        baseline=baseline,
    )
    if arguments.update_baseline:
        Baseline.write(baseline_path, report.findings)
        return (
            f"baseline {baseline_path} updated with "
            f"{len(report.findings)} finding(s)",
            0,
        )
    output = (
        format_json(report)
        if arguments.output_format == "json"
        else format_text(report)
    )
    code = 1 if (arguments.fail_on_findings and not report.clean) else 0
    return output, code


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_arg_parser()
    arguments = parser.parse_args(argv)
    try:
        output, code = execute(arguments)
    except (KeyError, FileNotFoundError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"repro-lint: error: {message}")
        return 2
    print(output)
    return code
