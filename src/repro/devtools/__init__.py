"""Developer tooling for the repro codebase.

:mod:`repro.devtools.lint` is a repo-specific static-analysis framework
whose checkers codify invariants the test suite can only catch by luck —
seeded-recall purity, wire-protocol pickle-freedom, event-loop blocking
discipline, lock hygiene and test port allocation.  ``python -m repro
lint`` runs it; ``src/repro/devtools/README.md`` documents every rule.

Nothing in this package is imported by the runtime serving or engine
code: the tools observe the tree, they are not part of it.
"""

from repro.devtools.lint import run_lint

__all__ = ["run_lint"]
