"""Serve associative recall over HTTP and fire concurrent client traffic.

Boots the micro-batching recognition service (``repro.serving``) on an
ephemeral port, classifies a handful of corpus images through plain
single-image ``POST /recognise`` calls from several concurrent client
threads — exactly the traffic shape the micro-batcher coalesces — and
prints the server's ``/stats`` summary: throughput, batch-fill histogram
and latency percentiles.

Run with ``PYTHONPATH=src python examples/serving_demo.py``; the defaults
use a reduced 12-class pipeline so the demo finishes in a few seconds.
The same flow doubles as the CI serving smoke test (boot, round-trip,
clean shutdown).
"""

from __future__ import annotations

import argparse
import threading
from typing import List, Optional, Sequence

from repro.core.pipeline import build_pipeline
from repro.datasets.attlike import load_default_dataset
from repro.serving import (
    RecognitionClient,
    RecognitionService,
    start_server,
    stop_server,
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--subjects", type=int, default=12, help="stored classes")
    parser.add_argument("--requests", type=int, default=48, help="images to classify")
    parser.add_argument("--concurrency", type=int, default=4, help="client threads")
    parser.add_argument("--seed", type=int, default=2013)
    from repro.backends import backend_names

    parser.add_argument(
        "--backend",
        default="threads",
        choices=backend_names(),
        help="execution backend for the recall engine pool",
    )
    arguments = parser.parse_args(argv)

    print(f"building a {arguments.subjects}-class pipeline ...")
    dataset = load_default_dataset(subjects=arguments.subjects, seed=arguments.seed)
    pipeline = build_pipeline(dataset, seed=arguments.seed)
    codes = pipeline.extractor.extract_many(dataset.test_images)

    service = RecognitionService(
        pipeline.amm,
        max_batch_size=16,
        max_wait=2e-3,
        workers=2,
        backend=arguments.backend,
    )
    server = start_server(service, port=0)
    print(f"serving on http://127.0.0.1:{server.port} (backend={arguments.backend})")

    correct: List[int] = []
    failures: List[str] = []
    lock = threading.Lock()

    def drive(thread_index: int) -> None:
        try:
            with RecognitionClient("127.0.0.1", server.port) as client:
                for index in range(
                    thread_index, arguments.requests, arguments.concurrency
                ):
                    image = index % codes.shape[0]
                    result = client.recognise(codes[image], seed=index)
                    with lock:
                        correct.append(
                            int(result["winner"] == int(dataset.test_labels[image]))
                        )
        except Exception as error:  # surface in main(): the smoke must fail
            with lock:
                failures.append(f"client thread {thread_index}: {error}")

    threads = [
        threading.Thread(target=drive, args=(index,))
        for index in range(arguments.concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    with RecognitionClient("127.0.0.1", server.port) as client:
        health = client.healthz()
        stats = client.stats()
    stop_server(server)

    if failures or len(correct) != arguments.requests:
        for failure in failures:
            print(f"FAILED: {failure}")
        print(f"only {len(correct)}/{arguments.requests} requests completed")
        return 1

    accuracy = sum(correct) / max(len(correct), 1)
    latency = stats["latency"]
    print(f"health: {health['status']} ({health['workers']} workers)")
    print(f"classified {len(correct)} images, accuracy {accuracy:.2f}")
    print(
        f"server: {stats['batches']['dispatched']} micro-batches, "
        f"mean fill {stats['batches']['mean_fill']:.1f}, "
        f"fill histogram {stats['batches']['fill_histogram']}"
    )
    print(
        f"latency p50/p90/p99: {latency['p50_ms']:.1f}/"
        f"{latency['p90_ms']:.1f}/{latency['p99_ms']:.1f} ms"
    )
    print(f"completed {stats['requests']['completed']} requests, clean shutdown")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
