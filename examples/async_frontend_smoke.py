"""Async-frontend smoke test: the event loop never loses to threads.

Builds the reduced pipeline from ``quickstart.py``, serves it from the
``processes`` execution backend, and drives the same offered JSON load
through the threaded (thread-per-connection) front end and the asyncio
front end.  A second async phase then serves JSON and the native binary
endpoint *concurrently* from the one event loop — mixed traffic — and
checks the binary answers bit-for-bit against the engine.  The script
prints both throughputs and fails (exit code 1) if the async front
end's JSON throughput lands more than 10% below the threaded front end
under identical offered load: a single-threaded event loop is only
worth shipping if it holds the line while spending far fewer threads.

CI runs this after the unit suite as a throughput smoke check::

    python examples/async_frontend_smoke.py

Options: ``--requests N`` (default 48), ``--concurrency C`` (default 8),
``--images-per-request I`` (default 16), ``--floor F`` (default 0.9).
"""

from __future__ import annotations

import argparse
import threading

from repro import load_default_dataset
from repro.core.config import DesignParameters
from repro.core.pipeline import build_pipeline
from repro.serving import (
    BinaryRecognitionClient,
    RecognitionService,
    run_load,
    start_async_server,
    start_server,
    stop_async_server,
    stop_server,
)


def _make_service(amm):
    return RecognitionService(
        amm,
        max_batch_size=32,
        max_wait=1e-3,
        max_queue_depth=4096,
        workers=2,
        backend="processes",
    )


def _drive_json(host, port, codes, arguments):
    report = run_load(
        host,
        port,
        codes,
        requests=arguments.requests,
        concurrency=arguments.concurrency,
        images_per_request=arguments.images_per_request,
        timeout=60.0,
    )
    if report.errors or report.rejected:
        raise RuntimeError(
            f"load run saw {report.errors} errors, {report.rejected} rejected"
        )
    return report.images / report.elapsed_seconds


def _measure_threaded(amm, codes, arguments):
    server = start_server(_make_service(amm), port=0)
    try:
        _drive_json("127.0.0.1", server.port, codes, arguments)  # warm up
        return _drive_json("127.0.0.1", server.port, codes, arguments)
    finally:
        stop_server(server)


def _measure_async(amm, codes, arguments):
    server = start_async_server(_make_service(amm), port=0, binary_port=None)
    try:
        _drive_json("127.0.0.1", server.port, codes, arguments)  # warm up
        return _drive_json("127.0.0.1", server.port, codes, arguments)
    finally:
        stop_async_server(server)


def _mixed_smoke(amm, codes, arguments):
    """Serve JSON and binary concurrently from one event loop: a
    background thread pushes binary batches (checked bit-for-bit against
    the engine) while the JSON load runs.  Correctness smoke only — the
    two protocols share the engine, so throughput is not compared here."""
    server = start_async_server(_make_service(amm), port=0, binary_port=0)
    stop = threading.Event()
    binary_batches = [0]
    failure: list = []
    seeds = [int(seed) for seed in range(codes.shape[0])]
    reference = amm.recognise_batch_seeded(codes, seeds)

    def binary_mixer():
        try:
            with BinaryRecognitionClient(
                "127.0.0.1", server.binary_port, client_id="smoke-binary"
            ) as client:
                while not stop.is_set():
                    result = client.recognise_batch(codes, seeds=seeds)
                    if result.ok != codes.shape[0]:
                        raise RuntimeError(
                            f"binary batch failed {result.failed} rows"
                        )
                    for index, row in enumerate(reference):
                        if result.winner[index] != row.winner:
                            raise RuntimeError(
                                f"binary winner diverges at row {index}"
                            )
                    binary_batches[0] += 1
        except Exception as error:  # surfaced to the main thread below
            failure.append(error)

    mixer = threading.Thread(target=binary_mixer, daemon=True)
    try:
        mixer.start()
        _drive_json("127.0.0.1", server.port, codes, arguments)
        stop.set()
        mixer.join(timeout=60.0)
        if failure:
            raise failure[0]
        if mixer.is_alive():
            raise RuntimeError("binary mixer thread did not finish")
        if binary_batches[0] == 0:
            raise RuntimeError("binary mixer completed no batches")
        return binary_batches[0]
    finally:
        stop.set()
        stop_async_server(server)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=48)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--images-per-request", type=int, default=16)
    parser.add_argument("--floor", type=float, default=0.9)
    parser.add_argument("--rounds", type=int, default=3)
    arguments = parser.parse_args(argv)

    parameters = DesignParameters(template_shape=(8, 4), num_templates=10)
    dataset = load_default_dataset(
        subjects=10, images_per_subject=6, image_shape=(64, 48), seed=7
    )
    pipeline = build_pipeline(dataset, parameters=parameters, seed=7)
    codes = pipeline.extractor.extract_many(dataset.test_images)
    print(
        f"Serving a {pipeline.amm.crossbar.rows}x"
        f"{pipeline.amm.crossbar.columns} crossbar on the processes "
        f"backend: {arguments.requests} requests x "
        f"{arguments.images_per_request} images, "
        f"concurrency={arguments.concurrency}"
    )

    # Interleave best-of-N rounds: the threaded and async passes see the
    # same host load drift, so the ratio compares front ends, not weather.
    threaded_ips = async_ips = 0.0
    for _ in range(max(1, arguments.rounds)):
        threaded_ips = max(
            threaded_ips, _measure_threaded(pipeline.amm, codes, arguments)
        )
        async_ips = max(
            async_ips, _measure_async(pipeline.amm, codes, arguments)
        )
    binary_batches = _mixed_smoke(pipeline.amm, codes, arguments)

    ratio = async_ips / threaded_ips
    print(f"  threaded JSON: {threaded_ips:8.1f} images/s")
    print(f"  async JSON:    {async_ips:8.1f} images/s ({ratio:.2f}x threaded)")
    print(
        f"  mixed phase: JSON load served with {binary_batches} concurrent "
        "binary batches, all bit-identical to the engine"
    )

    if ratio < arguments.floor:
        print(
            f"FAIL: async front end is {ratio:.2f}x threaded, below the "
            f"{arguments.floor:.2f}x floor — the event loop is dropping "
            "throughput it should be holding"
        )
        return 1
    print("async frontend smoke check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
