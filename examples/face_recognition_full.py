"""The paper's reference system: 128x40 crossbar face recognition.

Reproduces the end-to-end scenario of the paper: 40 individuals x 10
images (a synthetic stand-in for the AT&T database), 16x8 5-bit templates
stored along the 40 columns of a 128-row resistive crossbar, evaluated at
100 MHz by the spin-neuron SAR winner-take-all.

The script reports

* hardware classification accuracy versus the ideal-comparison accuracy,
* the winner agreement against an exact digital correlator (golden model),
* the power decomposition of the proposed design (analytic model and the
  activity measured during the run),
* the Table-1 style comparison against the MS-CMOS and digital baselines.

Run with::

    python examples/face_recognition_full.py [--images N]
"""

from __future__ import annotations

import argparse
import time

from repro import load_default_dataset
from repro.analysis.accuracy import ideal_matching_accuracy
from repro.analysis.power import build_table1
from repro.analysis.report import format_power_breakdown, format_si, format_table1
from repro.cmos.digital_mac import DigitalCorrelatorAsic
from repro.core.config import default_parameters
from repro.core.pipeline import build_pipeline
from repro.core.power import SpinAmmPowerModel
from repro.datasets.features import build_templates, templates_to_matrix


def main(max_images: int = 100) -> None:
    parameters = default_parameters()
    print("Generating the 40-subject synthetic face corpus (AT&T stand-in)...")
    dataset = load_default_dataset(seed=2013)

    print("Programming templates and calibrating the input DACs...")
    start = time.time()
    pipeline = build_pipeline(dataset, parameters=parameters, seed=2013)
    print(f"  built in {time.time() - start:.1f} s")

    print(f"\nClassifying {max_images} of the {dataset.size} test images "
          "through the full hardware model (parasitic crossbar solve + DWN WTA)...")
    start = time.time()
    evaluation = pipeline.evaluate(dataset, limit=max_images)
    elapsed = time.time() - start
    ideal = ideal_matching_accuracy(dataset, parameters.template_shape, parameters.template_bits)
    print(f"  hardware accuracy : {evaluation.accuracy * 100:.1f}%")
    print(f"  ideal comparison  : {ideal.accuracy * 100:.1f}%")
    print(f"  acceptance rate   : {evaluation.acceptance_rate * 100:.1f}%")
    print(f"  tie rate          : {evaluation.tie_rate * 100:.1f}%")
    print(f"  simulation speed  : {elapsed / evaluation.count * 1e3:.0f} ms per recognition")

    # Golden-model agreement on a handful of images.
    templates = build_templates(dataset.images, dataset.labels, pipeline.extractor)
    matrix, labels = templates_to_matrix(templates)
    asic = DigitalCorrelatorAsic(
        feature_length=parameters.feature_length, templates=parameters.num_templates
    )
    agreements = 0
    checks = 20
    for index in range(0, dataset.size, dataset.size // checks):
        codes = pipeline.extractor.extract_codes(dataset.images[index])
        digital_winner, _ = asic.find_winner(matrix, codes)
        spin = pipeline.classify_codes(codes)
        agreements += int(labels[digital_winner] == spin.winner)
    print(f"  winner agreement with exact digital correlator: {agreements}/{checks}")

    # Power decomposition: analytic model and measured activity.
    model = SpinAmmPowerModel(parameters)
    sample = pipeline.classify_image(dataset.images[0])
    breakdowns = {
        "analytic model (Table-1 basis)": model.breakdown(),
        "measured activity (this run)": model.power_from_measurement(
            sample.static_power, sample.events
        ),
    }
    print("\nPower decomposition of the proposed design (100 MHz input rate):")
    print(format_power_breakdown(breakdowns))
    print(
        "Energy per recognition (analytic): "
        f"{format_si(model.energy_per_recognition(), 'J')}"
    )

    print("\nTable-1 style comparison against the CMOS baselines:")
    print(format_table1(build_table1(parameters)))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--images", type=int, default=100,
                        help="number of test images to push through the hardware model")
    arguments = parser.parse_args()
    main(max_images=arguments.images)
