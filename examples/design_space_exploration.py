"""Design-space exploration of the spin-CMOS associative memory.

Explores the three design knobs the paper discusses and prints the
resulting trade-offs:

* WTA resolution (3/4/5 bits) — power and energy versus matching accuracy;
* DWN switching threshold — static/dynamic power split (the Fig. 13a
  trade-off);
* memristor conductance range — detection margin with and without wire
  parasitics (the Fig. 9a trade-off).

Uses a reduced 64x10 module so every point solves in well under a second.

Run with::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro import load_default_dataset
from repro.analysis.margins import conductance_range_sweep
from repro.analysis.power import threshold_power_sweep
from repro.analysis.report import format_margin_points, format_si, format_table
from repro.core.config import DesignParameters
from repro.core.pipeline import build_pipeline
from repro.core.power import SpinAmmPowerModel
from repro.datasets.features import build_templates, templates_to_matrix

def resolution_tradeoff(dataset) -> None:
    print("WTA resolution trade-off (accuracy vs power/energy)")
    rows = []
    for bits in (5, 4, 3):
        parameters = DesignParameters(
            template_shape=(8, 8), num_templates=10, wta_resolution_bits=bits
        )
        pipeline = build_pipeline(dataset, parameters=parameters, seed=3)
        evaluation = pipeline.evaluate(dataset, limit=30)
        model = SpinAmmPowerModel(parameters)
        rows.append(
            [
                f"{bits}-bit",
                f"{evaluation.accuracy * 100:.1f}%",
                format_si(model.total_power(resolution_bits=bits), "W"),
                format_si(model.energy_per_recognition(resolution_bits=bits), "J"),
            ]
        )
    print(format_table(["WTA resolution", "Accuracy", "Power", "Energy/recognition"], rows))
    print()


def threshold_tradeoff() -> None:
    print("DWN threshold trade-off (Fig. 13a mechanism)")
    thresholds = (2e-6, 1e-6, 0.5e-6, 0.25e-6)
    rows = []
    for threshold, breakdown in zip(thresholds, threshold_power_sweep(thresholds)):
        rows.append(
            [
                format_si(threshold, "A"),
                format_si(breakdown.static_total, "W"),
                format_si(breakdown.dynamic, "W"),
                format_si(breakdown.total, "W"),
            ]
        )
    print(format_table(["DWN threshold", "Static", "Dynamic", "Total"], rows))
    print()


def conductance_range_tradeoff(dataset) -> None:
    print("Memristor conductance-range trade-off (Fig. 9a mechanism)")
    parameters = DesignParameters(template_shape=(8, 8), num_templates=10)
    extractor_shape = parameters.template_shape
    from repro.datasets.features import FeatureExtractor

    extractor = FeatureExtractor(feature_shape=extractor_shape, bits=parameters.template_bits)
    templates = build_templates(dataset.images, dataset.labels, extractor)
    matrix, _ = templates_to_matrix(templates)
    points = conductance_range_sweep(
        matrix,
        r_min_values=(200.0, 500.0, 1000.0, 2000.0, 4000.0),
        parameters=parameters,
        num_inputs=3,
        seed=11,
    )
    print(format_margin_points(points, "Ohm (R_min, range ratio 32)"))
    best = max(points, key=lambda point: point.mean_margin)
    print(f"Best mean margin at R_min = {format_si(best.parameter, 'Ohm')}\n")


def main() -> None:
    dataset = load_default_dataset(
        subjects=10, images_per_subject=6, image_shape=(64, 64), seed=21
    )
    resolution_tradeoff(dataset)
    threshold_tradeoff()
    conductance_range_tradeoff(dataset)


if __name__ == "__main__":
    main()
