"""Scaling the associative memory beyond one crossbar (Section 5 extensions).

Demonstrates the two architectural extensions the paper sketches for larger
problems, using the synthetic face corpus:

* a **hierarchical** (clustered) memory: a small first-level module stores
  cluster centroids and routes each query to the one second-level module
  holding that cluster — fewer active columns and lower energy per
  recognition at a small accuracy cost;
* a **partitioned** memory: the feature vector is split across modular
  crossbar blocks whose partial degree-of-match codes are summed digitally.

Run with::

    python examples/hierarchical_scaling.py
"""

from __future__ import annotations

from repro import load_default_dataset
from repro.analysis.report import format_si, format_table
from repro.core.amm import AssociativeMemoryModule
from repro.core.config import DesignParameters
from repro.datasets.features import FeatureExtractor, build_templates, templates_to_matrix
from repro.extensions.hierarchical import HierarchicalAssociativeMemory
from repro.extensions.partitioned import PartitionedAssociativeMemory


def main() -> None:
    subjects = 20
    parameters = DesignParameters(template_shape=(8, 8), num_templates=subjects)
    extractor = FeatureExtractor(feature_shape=(8, 8), bits=5)
    dataset = load_default_dataset(
        subjects=subjects, images_per_subject=8, image_shape=(64, 64), seed=17
    )
    templates = build_templates(dataset.images, dataset.labels, extractor)
    matrix, labels = templates_to_matrix(templates)
    features = extractor.extract_many(dataset.images[::2])
    true_labels = dataset.labels[::2]

    def accuracy(recogniser) -> float:
        correct = 0
        for codes, label in zip(features, true_labels):
            if recogniser.recognise(codes).winner == int(label):
                correct += 1
        return correct / len(true_labels)

    print(f"Corpus: {subjects} subjects, {len(features)} evaluation images, "
          f"{matrix.shape[0]}-element templates\n")

    flat = AssociativeMemoryModule.from_templates(
        matrix, parameters=parameters, column_labels=labels, seed=17
    )
    hierarchy = HierarchicalAssociativeMemory(
        matrix, labels=labels, clusters=4, parameters=parameters, seed=17
    )
    partitioned = PartitionedAssociativeMemory(
        matrix, labels=labels, partitions=2, parameters=parameters, seed=17
    )

    rows = [
        [
            "flat 64x20 module",
            f"{accuracy(flat) * 100:.1f}%",
            "20",
            format_si(hierarchy.flat_energy_per_recognition(), "J"),
        ],
        [
            "hierarchical (4 clusters)",
            f"{accuracy(hierarchy) * 100:.1f}%",
            f"{hierarchy.active_columns_per_recognition():.1f}",
            format_si(hierarchy.energy_per_recognition(), "J"),
        ],
        [
            "partitioned (2 blocks)",
            f"{accuracy(partitioned) * 100:.1f}%",
            "20 (x2 blocks)",
            format_si(partitioned.energy_per_recognition(), "J"),
        ],
    ]
    print(
        format_table(
            ["Architecture", "Accuracy", "Active columns / recognition", "Energy / recognition"],
            rows,
        )
    )
    print(
        "\nCluster occupancy of the hierarchical memory: "
        + ", ".join(str(size) for size in hierarchy.cluster_sizes())
    )


if __name__ == "__main__":
    main()
