"""Batched recall: push a whole corpus through the crossbar in one pass.

Demonstrates the batched evaluation engine: the same reduced pipeline as
``quickstart.py``, but the entire test corpus is recalled with
``recognise_batch`` — one batched DAC conversion, one amortised crossbar
solve (the static MNA network is factorised once and each image becomes
a small dense Woodbury update) and a vectorised SAR winner-take-all.
The script times the legacy per-sample loop against the batched engine
and prints the throughput of both, then shows that the two paths agree
image for image.

Run with::

    python examples/batched_throughput.py
"""

from __future__ import annotations

import time

from repro import load_default_dataset
from repro.core.config import DesignParameters
from repro.core.pipeline import build_pipeline


def main() -> None:
    parameters = DesignParameters(template_shape=(8, 4), num_templates=10)
    dataset = load_default_dataset(
        subjects=10, images_per_subject=6, image_shape=(64, 48), seed=7
    )
    pipeline = build_pipeline(dataset, parameters=parameters, seed=7)
    codes = pipeline.extractor.extract_many(dataset.test_images)

    print(f"Recalling {codes.shape[0]} images on a "
          f"{pipeline.amm.crossbar.rows}x{pipeline.amm.crossbar.columns} crossbar")

    start = time.perf_counter()
    loop_results = [pipeline.amm.recognise(sample) for sample in codes]
    loop_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch_result = pipeline.amm.recognise_batch(codes)
    batch_seconds = time.perf_counter() - start

    agree = sum(
        scalar.winner == int(batch_result.winner[index])
        and scalar.dom_code == int(batch_result.dom_code[index])
        for index, scalar in enumerate(loop_results)
    )
    print(f"  per-sample loop: {codes.shape[0] / loop_seconds:8.1f} images/s")
    print(f"  batched engine:  {codes.shape[0] / batch_seconds:8.1f} images/s "
          f"({loop_seconds / batch_seconds:.1f}x)")
    print(f"  agreement: {agree}/{codes.shape[0]} images identical")

    evaluation = pipeline.evaluate(dataset, batch_size=64)
    print(f"  corpus accuracy (batch_size=64): {evaluation.accuracy:.3f}")


if __name__ == "__main__":
    main()
