"""Device-level characterisation of the spin neuron and its periphery.

Regenerates, as printed tables, the device-level figures of the paper:

* Fig. 5b — critical switching current of the domain-wall magnet versus
  device scaling;
* Fig. 5c — switching time versus device dimensions at a fixed write
  current;
* Fig. 7a — the domain-wall neuron's hysteretic transfer characteristic;
* Fig. 8b — the DTCS-DAC characteristic for several crossbar load
  conductances (the non-linearity that erodes the detection margin).

Run with::

    python examples/device_characterization.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_si, format_table
from repro.devices.dac import DtcsDac
from repro.devices.dwm import DomainWallMagnet
from repro.devices.dwn import DomainWallNeuron, DwnConfig


def dwm_scaling_table() -> None:
    print("Fig. 5b / 5c  -  domain-wall magnet scaling")
    magnet = DomainWallMagnet()
    write_current = 2.0 * magnet.critical_current
    rows = []
    for scale in (1.4, 1.2, 1.0, 0.8, 0.6, 0.4):
        scaled = magnet.scaled(scale)
        rows.append(
            [
                f"{scale:.1f}x",
                f"{scaled.thickness_nm:.1f}x{scaled.width_nm:.0f}x{scaled.length_nm:.0f} nm",
                format_si(scaled.critical_current, "A"),
                format_si(scaled.switching_time(write_current), "s"),
                f"{scaled.thermal_stability_factor:.1f} kT",
            ]
        )
    print(
        format_table(
            ["Scale", "Dimensions", "Critical current", "Switching time @ fixed I", "Barrier"],
            rows,
        )
    )
    print()


def dwn_transfer_table() -> None:
    print("Fig. 7a  -  domain-wall neuron transfer characteristic (hysteresis)")
    neuron = DomainWallNeuron(config=DwnConfig(threshold_current=1e-6), seed=0)
    sweep = np.linspace(-2e-6, 2e-6, 17)
    up = neuron.transfer_characteristic(sweep)
    neuron.reset(1)
    down = neuron.transfer_characteristic(sweep[::-1])[::-1]
    rows = [
        [format_si(current, "A"), f"{state_up:+d}", f"{state_down:+d}"]
        for current, state_up, state_down in zip(sweep, up, down)
    ]
    print(format_table(["Input current", "State (up sweep)", "State (down sweep)"], rows))
    print(f"Hysteresis window: {format_si(neuron.hysteresis_width(), 'A')}\n")


def dac_nonlinearity_table() -> None:
    print("Fig. 8b  -  DTCS-DAC characteristic vs crossbar load conductance")
    dac = DtcsDac(bits=5, unit_conductance=12.5e-6, delta_v=30e-3)
    loads = {
        "G_TS = 20 mS (low-R memristors)": 20e-3,
        "G_TS = 2 mS": 2e-3,
        "G_TS = 0.5 mS (high-R memristors)": 0.5e-3,
    }
    rows = []
    for label, load in loads.items():
        characteristics = dac.characteristics(load)
        rows.append(
            [
                label,
                format_si(characteristics.full_scale_current, "A"),
                f"{characteristics.max_integral_nonlinearity():.2f} LSB",
                f"{characteristics.relative_nonlinearity() * 100:.1f} %",
            ]
        )
    print(format_table(["Load", "Full-scale current", "Worst INL", "Relative non-linearity"], rows))
    print()


def main() -> None:
    dwm_scaling_table()
    dwn_transfer_table()
    dac_nonlinearity_table()


if __name__ == "__main__":
    main()
