"""Kill a remote worker mid-load and prove the serving path recovers.

The CI smoke for the ``remote`` execution backend:

1. spawn two ``python -m repro worker`` agents on localhost (ephemeral
   ports, addresses parsed back from their startup lines);
2. boot the HTTP recognition service on ``backend="remote"`` over both
   agents and pin a reference answer batch against the serial backend;
3. drive concurrent load, and **kill one agent** part-way through —
   in-flight shards must retry onto the survivor, so every request
   either succeeds or fails with a *retryable* 503, never a wrong
   answer;
4. after the load drains, re-ask the reference batch and require it
   bit-equal in every discrete field to the serial answer (invariant
   results), then restart the dead agent and require the supervisor to
   reconnect to it.

Exits non-zero on any violation.  Run with
``PYTHONPATH=src python examples/remote_failover_demo.py``.
"""

from __future__ import annotations

import argparse
import threading
import time
from typing import Optional, Sequence

import numpy as np

from repro.backends import spawn_local_worker
from repro.core.pipeline import build_pipeline
from repro.datasets.attlike import load_default_dataset
from repro.serving import (
    RecognitionClient,
    RecognitionService,
    ServerError,
    start_server,
    stop_server,
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--subjects", type=int, default=8, help="stored classes")
    parser.add_argument("--requests", type=int, default=32, help="HTTP requests")
    parser.add_argument("--concurrency", type=int, default=4, help="client threads")
    parser.add_argument("--seed", type=int, default=2013)
    arguments = parser.parse_args(argv)

    print("spawning two localhost worker agents ...", flush=True)
    victim, victim_address = spawn_local_worker()
    survivor, survivor_address = spawn_local_worker()
    print(f"  workers: {victim_address} (victim), {survivor_address}", flush=True)

    print(f"building a {arguments.subjects}-class pipeline ...", flush=True)
    dataset = load_default_dataset(subjects=arguments.subjects, seed=arguments.seed)
    pipeline = build_pipeline(dataset, seed=arguments.seed)
    codes = pipeline.extractor.extract_many(dataset.test_images)
    reference_codes = codes[:8]
    reference_seeds = list(range(900, 908))
    reference = pipeline.amm.recognise_batch_seeded(
        reference_codes, np.asarray(reference_seeds)
    )

    service = RecognitionService(
        pipeline.amm,
        max_batch_size=16,
        max_wait=2e-3,
        workers=2,
        backend="remote",
        backend_options={
            "worker_addresses": [victim_address, survivor_address],
            "min_shard_size": 2,
            "heartbeat_interval": 0.2,
            "backoff_base": 0.05,
        },
    )
    server = start_server(service, port=0)
    backend = service.pool.backend
    print(f"serving on http://127.0.0.1:{server.port} (backend=remote)", flush=True)

    outcomes = {"ok": 0, "retryable": 0, "fatal": 0}
    lock = threading.Lock()

    def check(expected_rows, results) -> bool:
        return len(results) == expected_rows

    def drive(thread_index: int) -> None:
        with RecognitionClient("127.0.0.1", server.port, timeout=60.0) as client:
            for request in range(arguments.requests // arguments.concurrency):
                base = (thread_index * 1000) + request * 8
                rows = codes[(base // 8) % max(1, codes.shape[0] - 8):][:8]
                seeds = [base + offset for offset in range(rows.shape[0])]
                try:
                    results = client.recognise_many(rows, seeds=seeds)
                    with lock:
                        outcomes["ok" if check(rows.shape[0], results) else "fatal"] += 1
                except ServerError as error:
                    with lock:
                        if error.status == 503:
                            outcomes["retryable"] += 1  # worker loss window
                        else:
                            outcomes["fatal"] += 1
                except OSError:
                    with lock:
                        outcomes["fatal"] += 1

    threads = [
        threading.Thread(target=drive, args=(index,), name=f"load-{index}")
        for index in range(arguments.concurrency)
    ]
    killer = threading.Timer(0.5, lambda: (print("  killing victim worker ...",
                                                flush=True), victim.terminate()))
    for thread in threads:
        thread.start()
    killer.start()
    for thread in threads:
        thread.join()
    killer.join()
    victim.wait(timeout=10.0)

    failures = []
    if outcomes["fatal"]:
        failures.append(f"{outcomes['fatal']} non-retryable request failures")
    if outcomes["ok"] == 0:
        failures.append("no request succeeded at all")
    print(
        f"load done: {outcomes['ok']} ok, {outcomes['retryable']} retryable 503s, "
        f"{outcomes['fatal']} fatal",
        flush=True,
    )

    # Invariant results after the loss: the surviving replica must give
    # the exact serial answer.
    with RecognitionClient("127.0.0.1", server.port, timeout=60.0) as client:
        results = client.recognise_many(reference_codes, seeds=reference_seeds)
    diverged = False
    for index, row in enumerate(results):
        if (
            row["winner_column"] != int(reference.winner_column[index])
            or row["dom_code"] != int(reference.dom_code[index])
            or row["accepted"] != bool(reference.accepted[index])
        ):
            failures.append(f"post-kill result {index} diverged: {row}")
            diverged = True
    if not diverged:
        print("post-kill reference batch matches the serial answer", flush=True)

    # Recovery: restart an agent on any port, repoint is not needed —
    # the supervisor keeps re-dialling the victim's address, so bring
    # the worker back *there* and wait for the reconnect.
    print("restarting the victim worker ...", flush=True)
    from repro.backends import WorkerServer

    replacement = WorkerServer(host=victim_address[0], port=victim_address[1])
    replacement.start()
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if all(link.alive for link in backend._links):
            break
        time.sleep(0.05)
    else:
        failures.append("supervisor never reconnected to the restarted worker")
    if not failures:
        print(
            f"reconnected (reconnects={backend.reconnects}, "
            f"retried_shards={backend.retried_shards}); final check ...",
            flush=True,
        )
        with RecognitionClient("127.0.0.1", server.port, timeout=60.0) as client:
            results = client.recognise_many(reference_codes, seeds=reference_seeds)
        for index, row in enumerate(results):
            if row["winner_column"] != int(reference.winner_column[index]):
                failures.append(f"post-recovery result {index} diverged: {row}")

    stop_server(server)
    replacement.close()
    survivor.terminate()
    survivor.wait(timeout=10.0)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", flush=True)
        return 1
    print("remote failover smoke passed", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
