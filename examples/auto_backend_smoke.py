"""Auto-backend smoke test: prove the cost-model router never loses.

Builds the reduced pipeline from ``quickstart.py``, prepares the
``auto`` execution backend (which calibrates a measured cost model for
each candidate at ``prepare()`` time) and pushes the same seeded recall
workload through ``serial`` and ``auto`` in serving-sized dispatch
batches.  The script prints the fitted cost models, the plan chosen for
the dispatch batch size and both throughputs, then fails (exit code 1)
if ``auto`` lands more than 10% below ``serial`` — routing is only
worth shipping if parallelism pays, or stays home.

CI runs this after the unit suite as a throughput smoke check::

    python examples/auto_backend_smoke.py

Options: ``--images N`` (default 400), ``--batch B`` (default 64),
``--floor F`` (default 0.9).
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from repro import load_default_dataset
from repro.backends import create_backend
from repro.core.config import DesignParameters
from repro.core.pipeline import build_pipeline


def _measure(backend, codes, seeds, batch):
    """Seconds and winners for one pass over the corpus in dispatch-sized
    batches."""
    winners = np.empty(codes.shape[0], dtype=np.int64)
    start = time.perf_counter()
    for begin in range(0, codes.shape[0], batch):
        end = min(begin + batch, codes.shape[0])
        result = backend.recall_batch_seeded(codes[begin:end], seeds[begin:end])
        winners[begin:end] = result.winner_column
    return time.perf_counter() - start, winners


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--images", type=int, default=400)
    parser.add_argument("--batch", type=int, default=64)
    parser.add_argument("--floor", type=float, default=0.9)
    parser.add_argument("--rounds", type=int, default=3)
    arguments = parser.parse_args(argv)

    parameters = DesignParameters(template_shape=(8, 4), num_templates=10)
    dataset = load_default_dataset(
        subjects=10, images_per_subject=6, image_shape=(64, 48), seed=7
    )
    pipeline = build_pipeline(dataset, parameters=parameters, seed=7)
    codes = pipeline.extractor.extract_many(dataset.test_images)
    repeats = -(-arguments.images // codes.shape[0])  # ceil
    codes = np.tile(codes, (repeats, 1))[: arguments.images]
    seeds = np.arange(codes.shape[0], dtype=np.int64)

    workers = max(2, min(os.cpu_count() or 1, 4))
    print(
        f"Routing {codes.shape[0]} images (batch={arguments.batch}) on a "
        f"{pipeline.amm.crossbar.rows}x{pipeline.amm.crossbar.columns} crossbar, "
        f"auto workers={workers}"
    )

    with create_backend("serial", pipeline.amm) as serial, create_backend(
        "auto", pipeline.amm, workers=workers,
        min_shard_size=max(1, arguments.batch // 4),
    ) as auto:
        serial.prepare()
        auto.prepare()
        for name, model in sorted(auto.cost_models.items()):
            print(
                f"  model {name:<10s} fixed={model.fixed:.3e}s "
                f"marginal={model.marginal:.3e}s/img "
                f"speedup={model.parallel_speedup:.2f}"
            )
        plan = auto.plan_for(arguments.batch)
        print(
            f"  plan@{arguments.batch}: {plan.backend} x{plan.shards} shard(s)"
        )
        # Interleave best-of-N rounds: the serial and auto passes see the
        # same host load drift, so the ratio compares plans, not weather.
        _measure(serial, codes, seeds, arguments.batch)  # warm up
        _measure(auto, codes, seeds, arguments.batch)
        serial_seconds = auto_seconds = float("inf")
        for _ in range(max(1, arguments.rounds)):
            seconds, serial_winners = _measure(
                serial, codes, seeds, arguments.batch
            )
            serial_seconds = min(serial_seconds, seconds)
            seconds, auto_winners = _measure(auto, codes, seeds, arguments.batch)
            auto_seconds = min(auto_seconds, seconds)

    if not np.array_equal(auto_winners, serial_winners):
        print("FAIL: auto winners diverge from the serial reference")
        return 1

    serial_ips = codes.shape[0] / serial_seconds
    auto_ips = codes.shape[0] / auto_seconds
    ratio = auto_ips / serial_ips
    print(f"  serial: {serial_ips:8.1f} images/s")
    print(f"  auto:   {auto_ips:8.1f} images/s ({ratio:.2f}x serial)")

    if ratio < arguments.floor:
        print(
            f"FAIL: auto is {ratio:.2f}x serial, below the "
            f"{arguments.floor:.2f}x floor — the cost model routed into a "
            "plan that does not pay on this host"
        )
        return 1
    print("auto backend smoke check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
