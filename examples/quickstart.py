"""Quickstart: build a small associative memory and recognise a few faces.

Runs in a few seconds.  It builds a reduced synthetic face corpus
(10 subjects x 6 images), programs the class templates into a resistive
crossbar, wires up the spin-neuron winner-take-all and classifies a
handful of images, printing the winner, the degree of match (DOM) and the
static power of each evaluation.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import load_default_dataset
from repro.analysis.report import format_si
from repro.core.config import DesignParameters
from repro.core.pipeline import build_pipeline


def main() -> None:
    # A reduced configuration: 8x4-pixel templates (32 crossbar rows) and
    # 10 stored individuals, so everything builds in well under a second.
    parameters = DesignParameters(template_shape=(8, 4), num_templates=10)
    dataset = load_default_dataset(
        subjects=10, images_per_subject=6, image_shape=(64, 48), seed=7
    )

    print("Building the spin-CMOS associative memory module...")
    pipeline = build_pipeline(dataset, parameters=parameters, seed=7)
    amm = pipeline.amm
    print(
        f"  crossbar: {amm.crossbar.rows} rows x {amm.crossbar.columns} columns, "
        f"memristors {parameters.memristor_r_min_ohm / 1e3:.0f}k-"
        f"{parameters.memristor_r_max_ohm / 1e3:.0f}kOhm"
    )
    print(
        f"  WTA: {parameters.wta_resolution_bits}-bit SAR with DWN threshold "
        f"{format_si(parameters.dwn_threshold_current, 'A')}"
    )

    print("\nClassifying ten test images:")
    correct = 0
    for index in range(0, dataset.size, dataset.size // 10):
        image = dataset.images[index]
        true_label = int(dataset.labels[index])
        result = pipeline.classify_image(image)
        status = "ok " if result.winner == true_label else "MISS"
        verdict = "accepted" if result.accepted else "rejected"
        correct += result.winner == true_label
        print(
            f"  image {index:3d}  true={true_label:2d}  predicted={result.winner:2d}  "
            f"DOM={result.dom_code:2d}/{pipeline.amm.wta.levels - 1}  "
            f"static={format_si(result.static_power, 'W')}  [{status}, {verdict}]"
        )
    print(f"  spot check: {correct}/10 correct")

    print("\nEvaluating the full corpus...")
    evaluation = pipeline.evaluate(dataset)
    print(
        f"  accuracy = {evaluation.accuracy * 100:.1f}%   "
        f"acceptance = {evaluation.acceptance_rate * 100:.1f}%   "
        f"mean static power = {format_si(evaluation.mean_static_power, 'W')}"
    )


if __name__ == "__main__":
    main()
