"""Fleet control-plane smoke: join, kill and re-spec under live load.

The CI smoke for the ``fleet`` execution backend.  Where the remote
failover demo proves *survival* (a 503 window is allowed), this one
proves the control plane absorbs every membership event with **zero
failed requests** — the fleet's internal shard retry hides worker loss
entirely from the serving path:

1. spawn two ``python -m repro worker`` agents and boot the HTTP
   recognition service on ``backend="fleet"`` with a control socket;
2. drive sustained concurrent load, and while it runs: spawn a **third**
   worker and admit it through ``FleetAdminClient.join``, **kill** one
   of the original workers, then trigger a rolling **re-spec**;
3. require zero non-ok requests across the whole run, a post-load
   reference batch bit-equal in every discrete field to the serial
   answer, and a ``/stats`` fleet section listing all three replicas
   with the bumped spec version.

Exits non-zero on any violation.  Run with
``PYTHONPATH=src python examples/fleet_demo.py``.
"""

from __future__ import annotations

import argparse
import threading
import time
from typing import Optional, Sequence

import numpy as np

from repro.backends import FleetAdminClient, spawn_local_worker
from repro.core.pipeline import build_pipeline
from repro.datasets.attlike import load_default_dataset
from repro.serving import (
    RecognitionClient,
    RecognitionService,
    ServerError,
    start_server,
    stop_server,
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--subjects", type=int, default=8, help="stored classes")
    parser.add_argument("--concurrency", type=int, default=4, help="client threads")
    parser.add_argument("--seed", type=int, default=2013)
    arguments = parser.parse_args(argv)

    print("spawning two localhost worker agents ...", flush=True)
    victim, victim_address = spawn_local_worker()
    anchor, anchor_address = spawn_local_worker()
    print(f"  workers: {victim_address} (victim), {anchor_address}", flush=True)

    print(f"building a {arguments.subjects}-class pipeline ...", flush=True)
    dataset = load_default_dataset(subjects=arguments.subjects, seed=arguments.seed)
    pipeline = build_pipeline(dataset, seed=arguments.seed)
    codes = pipeline.extractor.extract_many(dataset.test_images)
    reference_codes = codes[:8]
    reference_seeds = list(range(900, 908))
    reference = pipeline.amm.recognise_batch_seeded(
        reference_codes, np.asarray(reference_seeds)
    )

    service = RecognitionService(
        pipeline.amm,
        max_batch_size=16,
        max_wait=2e-3,
        workers=2,
        backend="fleet",
        backend_options={
            "worker_addresses": [victim_address, anchor_address],
            "min_shard_size": 2,
            "heartbeat_interval": 0.2,
            "backoff_base": 0.05,
            "control": ("127.0.0.1", 0),
        },
    )
    server = start_server(service, port=0)
    backend = service.pool.backend
    control_host, control_port = backend.control_address
    print(
        f"serving on http://127.0.0.1:{server.port} (backend=fleet, "
        f"control on {control_host}:{control_port})",
        flush=True,
    )

    outcomes = {"ok": 0, "failed": 0}
    lock = threading.Lock()
    stop = threading.Event()

    def drive(thread_index: int) -> None:
        with RecognitionClient("127.0.0.1", server.port, timeout=60.0) as client:
            request = 0
            while not stop.is_set():
                base = (thread_index * 1000) + request * 8
                rows = codes[(base // 8) % max(1, codes.shape[0] - 8):][:8]
                seeds = [base + offset for offset in range(rows.shape[0])]
                try:
                    results = client.recognise_many(rows, seeds=seeds)
                    ok = len(results) == rows.shape[0]
                    with lock:
                        outcomes["ok" if ok else "failed"] += 1
                except (ServerError, OSError):
                    with lock:
                        outcomes["failed"] += 1
                request += 1

    threads = [
        threading.Thread(target=drive, args=(index,), name=f"load-{index}")
        for index in range(arguments.concurrency)
    ]
    for thread in threads:
        thread.start()

    failures = []
    joiner = None
    try:
        # Event 1: a third worker joins the running fleet mid-load.
        time.sleep(0.4)
        print("  joining a third worker mid-load ...", flush=True)
        joiner, joiner_address = spawn_local_worker()
        with FleetAdminClient((control_host, control_port)) as admin:
            replica = admin.join(f"{joiner_address[0]}:{joiner_address[1]}")
            if replica["state"] != "live":
                failures.append(f"joiner admitted in state {replica['state']!r}")

        # Event 2: one original member dies under load.
        time.sleep(0.4)
        print("  killing the victim worker ...", flush=True)
        victim.terminate()
        victim.wait(timeout=10.0)

        # Event 3: rolling re-spec across whoever is left.
        time.sleep(0.4)
        print("  rolling re-spec ...", flush=True)
        with FleetAdminClient((control_host, control_port)) as admin:
            report = admin.respec(timeout=30.0)
        updated = sum(1 for entry in report if entry["outcome"] == "updated")
        if updated < 2:
            failures.append(f"re-spec updated only {updated} replicas: {report}")

        time.sleep(0.4)  # keep load flowing past the roll
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=60.0)

    if outcomes["failed"]:
        failures.append(f"{outcomes['failed']} failed requests (expected zero)")
    if outcomes["ok"] == 0:
        failures.append("no request succeeded at all")
    print(
        f"load done: {outcomes['ok']} ok, {outcomes['failed']} failed",
        flush=True,
    )

    # Invariant results: after join + kill + re-spec, the answer is still
    # bit-equal to the serial reference in every discrete field.
    with RecognitionClient("127.0.0.1", server.port, timeout=60.0) as client:
        results = client.recognise_many(reference_codes, seeds=reference_seeds)
    diverged = False
    for index, row in enumerate(results):
        if (
            row["winner_column"] != int(reference.winner_column[index])
            or row["dom_code"] != int(reference.dom_code[index])
            or row["accepted"] != bool(reference.accepted[index])
        ):
            failures.append(f"post-events result {index} diverged: {row}")
            diverged = True
    if not diverged:
        print("post-events reference batch matches the serial answer", flush=True)

    # The /stats fleet section reflects the full history: three replicas
    # known, two routable (the victim is dead), spec version bumped.
    stats = service.stats().get("fleet", {})
    replicas = stats.get("replicas", [])
    if len(replicas) != 3:
        failures.append(f"expected 3 replicas in /stats, saw {len(replicas)}")
    if stats.get("routable") != 2:
        failures.append(f"expected 2 routable replicas, saw {stats.get('routable')}")
    if stats.get("spec_version") != 1:
        failures.append(f"expected spec_version 1, saw {stats.get('spec_version')}")
    counters = stats.get("counters", {})
    print(
        f"fleet stats: {len(replicas)} replicas, {stats.get('routable')} routable, "
        f"spec v{stats.get('spec_version')}, counters {counters}",
        flush=True,
    )

    stop_server(server)
    for process in (anchor, joiner):
        if process is not None:
            process.terminate()
            process.wait(timeout=10.0)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", flush=True)
        return 1
    print("fleet control-plane smoke passed", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
