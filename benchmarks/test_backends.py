"""Execution-backend benchmark: serial vs threads vs processes vs remote,
plus the ``auto`` cost-model router.

Recalls the reference 128x40 corpus through each registered execution
backend at 1, 2 and all-cores worker counts (parasitic path, per-request
seeded substreams — the exact serving workload) and records the measured
throughput trajectory into ``BENCH_backends.json`` at the repository
root, uploaded as a CI artifact next to the recall and serving
trajectories.  The ``remote`` section runs against real
``python -m repro worker`` agents spawned on localhost (1 and 2
replicas), so the trajectory includes the wire-protocol overhead a
cross-host deployment pays per dispatch.  A second benchmark calibrates
the ``auto`` router on the same corpus and records its fitted cost
models, the chosen dispatch plan and the auto-vs-serial throughput ratio
(floor: 0.9x) into an ``"auto"`` section of the same file.

The benchmark also re-asserts the cross-backend contract on the timed
inputs (identical winners and DOM codes for identical seeds) and, on
multi-core hosts, that the process pool actually escapes the GIL: at
least ``REQUIRED_PROCESS_SPEEDUP`` x the threaded throughput with all
cores (a reduced bound on 2-3-core hosts, recording-only on one core,
where a process pool is pure IPC overhead).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np
import pytest

from repro.backends import create_backend

#: Where the backend trajectory is persisted.
OUTPUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_backends.json"

#: Images timed per measurement (corpus slices repeat to reach this).
IMAGES_PER_POINT = 400

#: Recall batch handed to the backend per call (the serving max batch).
DISPATCH_BATCH = 64

#: The acceptance bound: process pool vs thread pool at all cores.
REQUIRED_PROCESS_SPEEDUP = 2.0
#: Softer bound applied on 2-3-core hosts.
REDUCED_PROCESS_SPEEDUP = 1.2


def worker_sweep() -> list:
    cores = os.cpu_count() or 1
    return sorted({1, min(2, cores) if cores >= 2 else 1, cores} | {2})


@pytest.fixture(scope="module")
def recall_codes(full_pipeline, full_dataset):
    codes = full_pipeline.extractor.extract_many(full_dataset.test_images)
    repeats = -(-IMAGES_PER_POINT // codes.shape[0])  # ceil
    return np.tile(codes, (repeats, 1))[:IMAGES_PER_POINT]


@pytest.fixture(scope="module")
def request_seeds(recall_codes):
    return np.arange(recall_codes.shape[0], dtype=np.int64)


def measure(backend, codes, seeds) -> dict:
    """Throughput of seeded recall in serving-sized dispatch batches."""
    backend.prepare()
    # Warm up (first-touch allocations, worker readiness).
    backend.recall_batch_seeded(codes[:DISPATCH_BATCH], seeds[:DISPATCH_BATCH])
    winners = np.empty(codes.shape[0], dtype=np.int64)
    dom_codes = np.empty(codes.shape[0], dtype=np.int64)
    start = time.perf_counter()
    for begin in range(0, codes.shape[0], DISPATCH_BATCH):
        end = min(begin + DISPATCH_BATCH, codes.shape[0])
        result = backend.recall_batch_seeded(codes[begin:end], seeds[begin:end])
        winners[begin:end] = result.winner_column
        dom_codes[begin:end] = result.dom_code
    elapsed = time.perf_counter() - start
    return {
        "images": int(codes.shape[0]),
        "seconds": elapsed,
        "images_per_second": codes.shape[0] / elapsed,
        "winners": winners,
        "dom_codes": dom_codes,
    }


#: Localhost worker agents spawned for the remote section (the
#: acceptance bar is "remote over >= 2 localhost workers").
REMOTE_AGENTS = 2


def test_backend_throughput_matrix(full_pipeline, recall_codes, request_seeds, write_result):
    from repro.backends import spawn_local_worker

    amm = full_pipeline.amm
    cores = os.cpu_count() or 1
    sweep = worker_sweep()

    agents = [spawn_local_worker() for _ in range(REMOTE_AGENTS)]
    addresses = [address for _, address in agents]
    plan = [
        ("serial", [1]),
        ("threads", sweep),
        ("processes", sweep),
        ("remote", list(range(1, REMOTE_AGENTS + 1))),
    ]
    trajectory = {}
    reference = None
    try:
        for name, counts in plan:
            points = []
            for workers in counts:
                options = {}
                if name == "remote":
                    options["worker_addresses"] = addresses[:workers]
                backend = create_backend(
                    name, amm, workers=workers,
                    min_shard_size=DISPATCH_BATCH // 4, **options,
                )
                try:
                    point = measure(backend, recall_codes, request_seeds)
                finally:
                    backend.close()
                # The equivalence contract on the timed inputs: identical
                # discrete outputs for identical seeds, every backend/count.
                if reference is None:
                    reference = point
                assert np.array_equal(point["winners"], reference["winners"]), (
                    f"{name} x{workers} disagrees with the serial reference winners"
                )
                assert np.array_equal(point["dom_codes"], reference["dom_codes"]), (
                    f"{name} x{workers} disagrees with the serial reference DOM codes"
                )
                points.append(
                    {
                        "workers": workers,
                        "images": point["images"],
                        "seconds": point["seconds"],
                        "images_per_second": point["images_per_second"],
                    }
                )
            trajectory[name] = points
    finally:
        for process, _ in agents:
            process.terminate()
        for process, _ in agents:
            process.wait(timeout=10.0)

    def best(name):
        return max(trajectory[name], key=lambda p: p["images_per_second"])

    serial_ips = trajectory["serial"][0]["images_per_second"]
    thread_best = best("threads")
    process_best = best("processes")
    process_vs_threads = (
        process_best["images_per_second"] / thread_best["images_per_second"]
    )
    payload = {
        "cores": cores,
        "array": {"rows": amm.crossbar.rows, "columns": amm.crossbar.columns},
        "dispatch_batch": DISPATCH_BATCH,
        "worker_sweep": sweep,
        "backends": trajectory,
        "serial_images_per_second": serial_ips,
        "remote_agents": REMOTE_AGENTS,
        "best": {
            "threads": thread_best,
            "processes": process_best,
            "remote": best("remote"),
        },
        "process_vs_threads_speedup": process_vs_threads,
        "remote_vs_serial_speedup": (
            best("remote")["images_per_second"] / serial_ips
        ),
        "speedup_bound_applied": (
            REQUIRED_PROCESS_SPEEDUP
            if cores >= 4
            else (REDUCED_PROCESS_SPEEDUP if cores >= 2 else None)
        ),
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [f"cores={cores}  serial: {serial_ips:8.1f} images/s"]
    for name in ("threads", "processes", "remote"):
        for point in trajectory[name]:
            lines.append(
                f"{name:<10s} x{point['workers']:<2d} "
                f"{point['images_per_second']:8.1f} images/s"
            )
    lines.append(f"processes vs threads (best): {process_vs_threads:.2f}x")
    write_result("backends", "\n".join(lines))

    # Perf acceptance only where the hardware can express it: on a
    # single core a process pool is pure IPC overhead by construction.
    if cores >= 4:
        assert process_vs_threads >= REQUIRED_PROCESS_SPEEDUP, (
            f"process pool reached only {process_vs_threads:.2f}x the threaded "
            f"throughput on {cores} cores (required {REQUIRED_PROCESS_SPEEDUP}x)"
        )
    elif cores >= 2:
        assert process_vs_threads >= REDUCED_PROCESS_SPEEDUP, (
            f"process pool reached only {process_vs_threads:.2f}x the threaded "
            f"throughput on {cores} cores (required {REDUCED_PROCESS_SPEEDUP}x)"
        )


#: The auto router may never cost more than this fraction of serial
#: throughput — parallelism has to pay, or stay home.
AUTO_VS_SERIAL_FLOOR = 0.9


def test_auto_backend_cost_model(full_pipeline, recall_codes, request_seeds, write_result):
    """Calibrate the ``auto`` router on the reference corpus, record the
    fitted cost models and the plan it chose for the serving batch size,
    and hold it to the acceptance bar: never more than 10% below serial.

    Runs after the matrix benchmark and merges an ``"auto"`` section into
    the same ``BENCH_backends.json`` (creating a fresh file when run
    standalone)."""
    amm = full_pipeline.amm
    cores = os.cpu_count() or 1
    workers = max(2, min(cores, 4))

    serial = create_backend("serial", amm)
    auto = create_backend(
        "auto", amm, workers=workers, min_shard_size=DISPATCH_BATCH // 4
    )
    try:
        # Interleave best-of-3 rounds: both backends see the same host
        # load drift, so the ratio compares plans rather than weather
        # (a single sequential pass each swings ±15% on a busy host).
        serial_point = measure(serial, recall_codes, request_seeds)
        auto_point = measure(auto, recall_codes, request_seeds)
        for _ in range(2):
            contender = measure(serial, recall_codes, request_seeds)
            if contender["seconds"] < serial_point["seconds"]:
                serial_point = contender
            contender = measure(auto, recall_codes, request_seeds)
            if contender["seconds"] < auto_point["seconds"]:
                auto_point = contender
        cost_models = {
            name: model.to_dict() for name, model in auto.cost_models.items()
        }
        dispatch_plan = auto.plan_for(DISPATCH_BATCH).to_dict()
        plan_counts = dict(auto.plan_counts)
    finally:
        serial.close()
        auto.close()

    assert np.array_equal(auto_point["winners"], serial_point["winners"]), (
        "auto disagrees with the serial reference winners"
    )
    assert np.array_equal(auto_point["dom_codes"], serial_point["dom_codes"]), (
        "auto disagrees with the serial reference DOM codes"
    )

    ratio = auto_point["images_per_second"] / serial_point["images_per_second"]
    section = {
        "workers": workers,
        "images": auto_point["images"],
        "seconds": auto_point["seconds"],
        "images_per_second": auto_point["images_per_second"],
        "serial_images_per_second": serial_point["images_per_second"],
        "auto_vs_serial": ratio,
        "cost_models": cost_models,
        "dispatch_plan": dispatch_plan,
        "plan_counts": plan_counts,
    }
    payload = (
        json.loads(OUTPUT_PATH.read_text()) if OUTPUT_PATH.exists() else {"cores": cores}
    )
    payload["auto"] = section
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"auto x{workers}: {auto_point['images_per_second']:8.1f} images/s "
        f"({ratio:.2f}x serial)",
        f"plan@{DISPATCH_BATCH}: {dispatch_plan['backend']} "
        f"x{dispatch_plan['shards']} shards",
    ]
    for name, model in sorted(cost_models.items()):
        lines.append(
            f"model {name:<10s} fixed={model['fixed_seconds']:.3e}s "
            f"marginal={model['marginal_seconds_per_image']:.3e}s/img "
            f"speedup={model['parallel_speedup']:.2f}"
        )
    write_result("backends_auto", "\n".join(lines))

    assert ratio >= AUTO_VS_SERIAL_FLOOR, (
        f"auto reached only {ratio:.2f}x serial throughput "
        f"(floor {AUTO_VS_SERIAL_FLOOR}x): the cost model routed into a "
        "plan that does not pay on this host"
    )
