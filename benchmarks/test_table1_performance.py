"""Table 1 — power, frequency and energy comparison (E-T1).

Regenerates the paper's headline comparison between the proposed spin-CMOS
processing element, the two MS-CMOS binary-tree WTA designs (refs [17] and
[18]) and a 45 nm digital CMOS MAC correlator, for WTA resolutions of 3, 4
and 5 bits.  The absolute power values are calibrated architectural
estimates (see DESIGN.md); the reproduction targets are the orderings and
the ~10²x (MS-CMOS) and ~10³x (digital) energy ratios.
"""

from __future__ import annotations

import pytest

from repro.analysis.power import build_table1, table1_by_design
from repro.analysis.report import format_table1

#: Paper values (power in watts) for qualitative cross-checking.
PAPER_POWER = {
    "spin-CMOS PE": {5: 65e-6, 4: 45e-6, 3: 32e-6},
    "[18] async Min/Max BT-WTA": {5: 5.5e-3, 4: 2.9e-3, 3: 2.3e-3},
    "[17] binary-tree WTA": {5: 8e-3, 4: 5.0e-3, 3: 3.2e-3},
    "45nm digital CMOS": {5: 4e-3, 4: 2.8e-3, 3: 1.2e-3},
}
#: Paper energy ratios (relative to the spin-CMOS design).
PAPER_ENERGY_RATIOS = {
    "[18] async Min/Max BT-WTA": {5: 160, 4: 140, 3: 155},
    "[17] binary-tree WTA": {5: 215, 4: 221, 3: 210},
    "45nm digital CMOS": {5: 2460, 4: 2300, 3: 1100},
}


def test_table1_performance(benchmark, reference_parameters, write_result):
    rows = benchmark(lambda: build_table1(reference_parameters, resolutions=(5, 4, 3)))
    write_result("table1_performance_comparison", format_table1(rows))
    indexed = table1_by_design(rows)

    # Column 1: the proposed design stays in the tens-of-microwatts range
    # and tracks the paper's values within ~30 %.
    for bits, expected in PAPER_POWER["spin-CMOS PE"].items():
        assert indexed["spin-CMOS PE"][bits].power == pytest.approx(expected, rel=0.35)

    # The MS-CMOS designs sit in the milliwatt range with [17] > [18].
    for bits in (3, 4, 5):
        power_17 = indexed["[17] binary-tree WTA"][bits].power
        power_18 = indexed["[18] async Min/Max BT-WTA"][bits].power
        assert power_17 > power_18
        assert 1e-3 < power_18 < 12e-3
        assert power_17 == pytest.approx(PAPER_POWER["[17] binary-tree WTA"][bits], rel=0.4)

    # The digital design's 5-bit entry matches the 4 mW / 2.5 MHz point.
    assert indexed["45nm digital CMOS"][5].power == pytest.approx(4e-3, rel=0.3)
    assert indexed["45nm digital CMOS"][5].frequency == pytest.approx(2.5e6)

    # Energy ratios: ~10^2x for MS-CMOS, ~10^3x for digital at every
    # resolution (who wins, and by roughly what factor).
    for design in ("[17] binary-tree WTA", "[18] async Min/Max BT-WTA"):
        for bits in (3, 4, 5):
            ratio = indexed[design][bits].energy_ratio
            assert 80 < ratio < 500
    for bits in (3, 4, 5):
        ratio = indexed["45nm digital CMOS"][bits].energy_ratio
        assert 800 < ratio < 6000

    # Frequencies match the paper's operating points.
    assert indexed["spin-CMOS PE"][5].frequency == pytest.approx(100e6)
    assert indexed["[17] binary-tree WTA"][5].frequency == pytest.approx(50e6)
