"""Fig. 9 — detection-margin trade-offs (E-F9a, E-F9b).

* Fig. 9a: detection margin versus the memristor conductance range.  Very
  low resistances draw currents whose IR drops across the wire parasitics
  corrupt the margin; very high resistances (small G_TS) push the DTCS-DAC
  into its non-linear region and compress the usable current range.  The
  optimum lies in between — the paper settles on the 1 kΩ-32 kΩ range.
* Fig. 9b: detection margin versus the terminal voltage ΔV.  30 mV retains
  nearly the full margin; pushing ΔV much lower squeezes the achievable
  signal currents against the parasitic drops and the DAC compliance.

The sweeps run on a reduced 64x10 module (same wire parasitics per cell,
same device models) so that the full two-dimensional exploration completes
in seconds; see DESIGN.md for the geometry note.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.margins import conductance_range_sweep, delta_v_sweep
from repro.analysis.report import format_margin_points

#: Fig. 9a sweep: lowest programmable resistance (Ω); the range ratio stays 32.
FIG9A_R_MIN_VALUES = (200.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0, 16000.0)
#: Fig. 9b sweep: terminal voltage ΔV (V).
FIG9B_DELTA_V_VALUES = (60e-3, 45e-3, 30e-3, 20e-3, 10e-3, 5e-3, 2e-3)


def test_fig9a_conductance_range(benchmark, margin_templates, margin_parameters, write_result):
    points = benchmark.pedantic(
        lambda: conductance_range_sweep(
            margin_templates,
            r_min_values=FIG9A_R_MIN_VALUES,
            resistance_ratio=32.0,
            parameters=margin_parameters,
            num_inputs=4,
            seed=9,
        ),
        rounds=1,
        iterations=1,
    )
    write_result(
        "fig9a_margin_vs_conductance_range",
        format_margin_points(points, "Ohm"),
    )

    margins = np.array([point.mean_margin for point in points])
    # The margin peaks at an intermediate resistance range: both the lowest
    # and the highest sweep points fall below the best point.
    best = margins.max()
    assert margins[0] < best - 0.005
    assert margins[-1] < best - 0.005
    # The optimum lies in the paper's chosen decade (0.5 kΩ - 8 kΩ minimum
    # resistance, i.e. ranges bracketing 1 kΩ-32 kΩ).
    best_r_min = points[int(margins.argmax())].parameter
    assert 500.0 <= best_r_min <= 8000.0
    # Removing the parasitics recovers margin at the low-resistance end
    # (that degradation is wire-drop induced, not data induced).
    assert points[0].mean_margin_ideal > points[0].mean_margin


def test_fig9b_delta_v(benchmark, margin_templates, margin_parameters, write_result):
    points = benchmark.pedantic(
        lambda: delta_v_sweep(
            margin_templates,
            delta_v_values=FIG9B_DELTA_V_VALUES,
            parameters=margin_parameters,
            num_inputs=4,
            seed=9,
        ),
        rounds=1,
        iterations=1,
    )
    write_result("fig9b_margin_vs_delta_v", format_margin_points(points, "V"))

    margins = {point.parameter: point.mean_margin for point in points}
    # 30 mV (the paper's choice) retains essentially the margin available at
    # twice that voltage...
    assert margins[30e-3] > margins[60e-3] - 0.02
    # ...while very small terminal voltages lose margin.
    assert margins[2e-3] < margins[30e-3]
    assert min(margins.values()) == min(margins[2e-3], margins[5e-3])
