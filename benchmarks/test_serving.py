"""End-to-end serving benchmark: offered load through the HTTP path.

Boots the micro-batching recognition service (``repro.serving``) on the
reference 128x40 pipeline and measures what a client actually sees
through ``POST /recognise``:

* an **offered-load sweep**: end-to-end images/second and latency
  percentiles versus client concurrency, with the micro-batcher
  coalescing concurrent requests into engine batches;
* a **batch-window sweep**: the same load under different ``max_wait``
  windows (0 = dispatch immediately), the knob trading tail latency for
  batch fill;
* the **batch_size=1 dispatch reference**: the same service shape but
  every request dispatched through the legacy per-sample sparse solve
  (the repository-wide ``batch_size=1`` convention) — the baseline the
  micro-batching speedup is asserted against;
* a **streaming-vs-buffered comparison** on one 1000-image request: the
  chunked NDJSON stream must return row-identical results with a far
  earlier first row (incremental delivery instead of one buffered body);
* a **mixed-priority saturation run**: under saturated load striped
  across priority 0 and priority 9 client threads, high-priority p50
  latency must measurably beat low-priority.

The measured trajectory is written to ``BENCH_serving.json`` at the
repository root (uploaded as a CI artifact next to
``BENCH_throughput.json``) so the serving headline can be tracked across
commits.  The later tests merge their sections into the same file, so
the whole serving story lives in one artifact.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.serving import (
    RecognitionClient,
    RecognitionService,
    run_load,
    start_server,
    stop_server,
)

#: Where the serving trajectory is persisted.
OUTPUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serving.json"

#: Micro-batching configuration under test.
MAX_BATCH_SIZE = 64
MAX_WAIT_SECONDS = 2e-3
WORKERS = 2

#: Offered-load sweep: concurrent client threads.
CONCURRENCY_SWEEP = (1, 4, 16)
#: Batch-window sweep (seconds) at fixed concurrency.
WINDOW_SWEEP = (0.0, 2e-3, 8e-3)
WINDOW_CONCURRENCY = 8
#: Code vectors per HTTP request (an edge node aggregating its users);
#: each vector is queued as an independent recall request.
IMAGES_PER_REQUEST = 16
REQUESTS_PER_POINT = 96

#: The slow reference: requests dispatched one sparse MNA solve at a time.
BATCH1_REQUESTS = 12
BATCH1_IMAGES_PER_REQUEST = 2

#: The PR's headline requirements.
REQUIRED_SPEEDUP = 10.0
REQUIRED_IMAGES_PER_SECOND = 1000.0


@pytest.fixture(scope="module")
def recall_codes(full_pipeline, full_dataset):
    """Pre-extracted feature codes of the whole test corpus."""
    return full_pipeline.extractor.extract_many(full_dataset.test_images)


def _measure(service, codes, requests, concurrency, images_per_request):
    server = start_server(service, port=0)
    try:
        report = run_load(
            "127.0.0.1",
            server.port,
            codes,
            requests=requests,
            concurrency=concurrency,
            images_per_request=images_per_request,
        )
        with RecognitionClient("127.0.0.1", server.port) as client:
            stats = client.stats()
    finally:
        stop_server(server)
    assert report.errors == 0 and report.rejected == 0
    point = report.as_dict()
    point["server"] = {
        "mean_batch_fill": stats["batches"]["mean_fill"],
        "batches_dispatched": stats["batches"]["dispatched"],
        "queue_depth_max": stats["queue_depth"]["max"],
        "p99_ms": stats["latency"]["p99_ms"],
    }
    return point


def test_http_serving_throughput(full_pipeline, full_dataset, recall_codes, write_result):
    amm = full_pipeline.amm

    # batch_size=1 dispatch: the legacy per-sample reference, measured on a
    # small request budget because each image is a full sparse MNA solve.
    batch1_service = RecognitionService(
        amm,
        max_batch_size=1,
        max_wait=0.0,
        workers=WORKERS,
        legacy_per_sample=True,
    )
    batch1 = _measure(
        batch1_service,
        recall_codes,
        requests=BATCH1_REQUESTS,
        concurrency=4,
        images_per_request=BATCH1_IMAGES_PER_REQUEST,
    )

    def micro_batched_service(max_wait=MAX_WAIT_SECONDS):
        return RecognitionService(
            amm,
            max_batch_size=MAX_BATCH_SIZE,
            max_wait=max_wait,
            workers=WORKERS,
        )

    concurrency_sweep = []
    for concurrency in CONCURRENCY_SWEEP:
        point = _measure(
            micro_batched_service(),
            recall_codes,
            requests=REQUESTS_PER_POINT,
            concurrency=concurrency,
            images_per_request=IMAGES_PER_REQUEST,
        )
        concurrency_sweep.append(point)

    window_sweep = []
    for max_wait in WINDOW_SWEEP:
        point = _measure(
            micro_batched_service(max_wait=max_wait),
            recall_codes,
            requests=REQUESTS_PER_POINT,
            concurrency=WINDOW_CONCURRENCY,
            images_per_request=IMAGES_PER_REQUEST,
        )
        point["max_wait_seconds"] = max_wait
        window_sweep.append(point)

    best = max(concurrency_sweep + window_sweep, key=lambda p: p["images_per_second"])
    speedup = best["images_per_second"] / batch1["images_per_second"]
    payload = {
        "array": {"rows": amm.crossbar.rows, "columns": amm.crossbar.columns},
        "service": {
            "max_batch_size": MAX_BATCH_SIZE,
            "max_wait_seconds": MAX_WAIT_SECONDS,
            "workers": WORKERS,
        },
        "batch1_dispatch": batch1,
        "concurrency_sweep": concurrency_sweep,
        "window_sweep": window_sweep,
        "best": best,
        "speedup_vs_batch1_dispatch": speedup,
    }
    merged = {}
    if OUTPUT_PATH.exists():
        merged = json.loads(OUTPUT_PATH.read_text())
    merged.update(payload)
    OUTPUT_PATH.write_text(json.dumps(merged, indent=2) + "\n")

    lines = [
        f"batch1 dispatch: {batch1['images_per_second']:8.1f} images/s "
        f"(p99 {batch1['latency']['p99_ms']:7.1f} ms)",
    ]
    for point in concurrency_sweep:
        lines.append(
            f"concurrency={point['concurrency']:<3d}  "
            f"{point['images_per_second']:8.1f} images/s "
            f"(p99 {point['latency']['p99_ms']:6.1f} ms, "
            f"fill {point['server']['mean_batch_fill']:.1f})"
        )
    for point in window_sweep:
        lines.append(
            f"window={point['max_wait_seconds'] * 1e3:4.1f} ms     "
            f"{point['images_per_second']:8.1f} images/s "
            f"(p99 {point['latency']['p99_ms']:6.1f} ms, "
            f"fill {point['server']['mean_batch_fill']:.1f})"
        )
    lines.append(f"micro-batching speedup vs batch1 dispatch: {speedup:.1f}x")
    write_result("serving", "\n".join(lines))

    assert best["images_per_second"] >= REQUIRED_IMAGES_PER_SECOND, (
        f"HTTP serving reached only {best['images_per_second']:.0f} images/s "
        f"(required {REQUIRED_IMAGES_PER_SECOND:.0f})"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"micro-batching reached only {speedup:.1f}x over batch_size=1 dispatch "
        f"(required {REQUIRED_SPEEDUP}x)"
    )


def _merge_bench_section(key, value):
    """Read-modify-write one section of BENCH_serving.json."""
    payload = {}
    if OUTPUT_PATH.exists():
        payload = json.loads(OUTPUT_PATH.read_text())
    payload[key] = value
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


#: The large-request comparison: one request carrying this many images.
LARGE_REQUEST_IMAGES = 1000


def test_streaming_vs_buffered_large_request(
    full_pipeline, recall_codes, write_result
):
    """A 1000-image request: buffered vs chunked streaming.

    The stream must return exactly the buffered rows (the seeded-recall
    invariant) while delivering its *first* row long before the buffered
    response's single body arrives — the latency win that motivates the
    streaming mode — with server-side buffering bounded by the
    submission window instead of the request size.
    """
    import numpy as np

    amm = full_pipeline.amm
    pool = np.asarray(recall_codes)
    codes = np.tile(pool, (LARGE_REQUEST_IMAGES // pool.shape[0] + 1, 1))[
        :LARGE_REQUEST_IMAGES
    ]
    seeds = list(range(LARGE_REQUEST_IMAGES))
    service = RecognitionService(
        amm, max_batch_size=MAX_BATCH_SIZE, max_wait=MAX_WAIT_SECONDS, workers=WORKERS
    )
    server = start_server(service, port=0)
    try:
        import time

        with RecognitionClient("127.0.0.1", server.port, timeout=120.0) as client:
            begin = time.perf_counter()
            buffered = client.recognise_many(codes, seeds=seeds)
            buffered_total = time.perf_counter() - begin
        with RecognitionClient("127.0.0.1", server.port, timeout=120.0) as client:
            begin = time.perf_counter()
            first_row_at = None
            streamed = {}
            summary = None
            for event in client.recognise_stream(codes, seeds=seeds):
                if "result" in event:
                    if first_row_at is None:
                        first_row_at = time.perf_counter() - begin
                    streamed[event["index"]] = event["result"]
                elif event.get("done"):
                    summary = event
            stream_total = time.perf_counter() - begin
    finally:
        stop_server(server)

    assert summary == {
        "done": True,
        "count": LARGE_REQUEST_IMAGES,
        "ok": LARGE_REQUEST_IMAGES,
        "failed": 0,
    }
    assert len(buffered) == LARGE_REQUEST_IMAGES
    # Row-identical to the buffered path: same seeded substreams, same
    # engine — streaming changes delivery, never answers.  Discrete
    # fields must match exactly; the analog power to solver precision
    # (the two runs shard batches at different boundaries, so the BLAS
    # reduction order can differ in the last ulp).
    for index in range(LARGE_REQUEST_IMAGES):
        streamed_row = dict(streamed[index])
        buffered_row = dict(buffered[index])
        streamed_power = streamed_row.pop("static_power_w")
        buffered_power = buffered_row.pop("static_power_w")
        assert streamed_row == buffered_row
        assert streamed_power == pytest.approx(buffered_power, rel=1e-9)

    section = {
        "images": LARGE_REQUEST_IMAGES,
        "buffered_total_seconds": buffered_total,
        "stream_total_seconds": stream_total,
        "stream_first_row_seconds": first_row_at,
        "first_row_speedup_vs_buffered_total": buffered_total / first_row_at,
    }
    _merge_bench_section("streaming_large_request", section)
    write_result(
        "serving_streaming",
        "\n".join(
            [
                f"buffered 1000-image request: {buffered_total * 1e3:8.1f} ms to last byte",
                f"streamed 1000-image request: {stream_total * 1e3:8.1f} ms total, "
                f"first row after {first_row_at * 1e3:6.1f} ms",
                "first-row speedup vs buffered body: "
                f"{buffered_total / first_row_at:.1f}x",
            ]
        ),
    )
    # The headline claim: results identical, first row far earlier than
    # the buffered body (conservative 2x bound; typically >10x).
    assert first_row_at * 2 < buffered_total, (
        f"streaming delivered its first row after {first_row_at * 1e3:.1f} ms, "
        f"not measurably before the {buffered_total * 1e3:.1f} ms buffered body"
    )


#: Mixed-priority saturation shape: one worker, many client threads
#: posting large requests, so the pending queue stays deep and queued
#: low-priority rows are continually overtaken.
PRIORITY_MIX = (0, 9)
PRIORITY_CONCURRENCY = 12
PRIORITY_REQUESTS = 120
PRIORITY_IMAGES_PER_REQUEST = 48


def test_mixed_priority_latency_under_saturation(full_pipeline, recall_codes, write_result):
    """Under saturated mixed load, high-priority p50 beats low-priority.

    One worker and a small queue keep the service saturated; half the
    client threads post priority 0, half priority 9.  The priority-
    ordered pending queue must dispatch the high-priority requests ahead
    of the queued lows, which shows up as a measurably lower p50.
    """
    amm = full_pipeline.amm
    service = RecognitionService(
        amm,
        max_batch_size=MAX_BATCH_SIZE,
        max_wait=MAX_WAIT_SECONDS,
        max_queue_depth=256,
        workers=1,
    )
    server = start_server(service, port=0)
    try:
        report = run_load(
            "127.0.0.1",
            server.port,
            recall_codes,
            requests=PRIORITY_REQUESTS,
            concurrency=PRIORITY_CONCURRENCY,
            images_per_request=PRIORITY_IMAGES_PER_REQUEST,
            priorities=PRIORITY_MIX,
        )
        with RecognitionClient("127.0.0.1", server.port) as client:
            stats = client.stats()
    finally:
        stop_server(server)

    assert report.errors == 0
    by_priority = report.priority_latency_percentiles()
    # Rejected requests record no latency; the comparison needs both
    # levels to have actually completed work (a clean assert beats a
    # KeyError when a slow host rejects a whole level).
    assert 0 in by_priority and 9 in by_priority, (
        f"saturation rejected a whole priority level: {sorted(by_priority)} "
        f"(rejected={report.rejected}, errors={report.errors})"
    )
    low_p50 = by_priority[0]["p50_ms"]
    high_p50 = by_priority[9]["p50_ms"]
    section = {
        "priorities": list(PRIORITY_MIX),
        "concurrency": PRIORITY_CONCURRENCY,
        "requests": PRIORITY_REQUESTS,
        "images_per_request": PRIORITY_IMAGES_PER_REQUEST,
        "low_priority_p50_ms": low_p50,
        "high_priority_p50_ms": high_p50,
        "p50_ratio_low_over_high": low_p50 / max(high_p50, 1e-9),
        "report": report.as_dict(),
        "server_priorities": stats["priorities"],
    }
    _merge_bench_section("priority_mix", section)
    write_result(
        "serving_priorities",
        "\n".join(
            [
                f"saturated mixed load ({PRIORITY_CONCURRENCY} threads, "
                f"priorities {PRIORITY_MIX}):",
                f"  low  (p=0) p50: {low_p50:8.2f} ms",
                f"  high (p=9) p50: {high_p50:8.2f} ms",
                f"  advantage: {low_p50 / max(high_p50, 1e-9):.2f}x",
            ]
        ),
    )
    assert high_p50 < low_p50, (
        f"high-priority p50 {high_p50:.2f} ms did not beat "
        f"low-priority p50 {low_p50:.2f} ms under saturation"
    )


def test_served_results_match_offline_recall(full_pipeline, recall_codes):
    """The HTTP path returns exactly what the seeded engine returns offline."""
    amm = full_pipeline.amm
    subset = recall_codes[:24]
    seeds = list(range(24))
    service = RecognitionService(amm, max_batch_size=16, max_wait=1e-3, workers=WORKERS)
    server = start_server(service, port=0)
    try:
        with RecognitionClient("127.0.0.1", server.port) as client:
            served = client.recognise_many(subset, seeds=seeds)
    finally:
        stop_server(server)
    reference = amm.recognise_batch_seeded(subset, seeds)
    for index, result in enumerate(served):
        assert result["winner"] == reference[index].winner
        assert result["dom_code"] == reference[index].dom_code
        assert result["accepted"] == reference[index].accepted
        assert result["tie"] == reference[index].tie


# --------------------------------------------------------------------- #
# Connection sweep: async vs threaded front end at high connection counts
# --------------------------------------------------------------------- #

#: Keep-alive connection counts for the frontend comparison.
CONNECTION_SWEEP = (16, 256, 1024)
SWEEP_IMAGES_PER_REQUEST = 16


def test_connection_sweep_async_vs_threaded(full_pipeline, recall_codes, write_result):
    """Throughput vs keep-alive connection count, both front ends.

    The thread-per-connection reference pays one OS thread per open
    connection; the asyncio front end pays one heap object.  The same
    steady-state offered load (several keep-alive requests per
    connection from ``run_connection_load``'s single event loop, bodies
    pre-encoded) is driven at each connection count.  On a multi-core
    box the thread churn shows up as lost throughput; on the single-core
    CI runner the GIL already serialises everything, so the asserted
    floor is parity (the CI smoke's 10% band) and the resource story is
    recorded alongside: the threaded server holds one OS thread per
    connection while the async server holds one, period.
    """
    import threading as threading_module

    from repro.serving import run_connection_load, start_async_server, stop_async_server

    amm = full_pipeline.amm

    def fresh_service():
        # The sweep opens every connection before the first request, so
        # the instantaneous offered load is connections x images — the
        # queue must absorb the burst (this measures frontends, not the
        # admission policy; backpressure is exercised elsewhere).
        return RecognitionService(
            amm,
            max_batch_size=MAX_BATCH_SIZE,
            max_wait=MAX_WAIT_SECONDS,
            workers=WORKERS,
            max_queue_depth=max(CONNECTION_SWEEP) * SWEEP_IMAGES_PER_REQUEST * 2,
        )

    def measure(frontend, connections):
        service = fresh_service()
        if frontend == "async":
            server = start_async_server(service, port=0, binary_port=None)
        else:
            server = start_server(service, port=0)
        baseline_threads = threading_module.active_count()
        peak_threads = [baseline_threads]

        def sample_threads(stop_event):
            while not stop_event.wait(0.05):
                peak_threads.append(threading_module.active_count())

        stop_sampling = threading_module.Event()
        sampler = threading_module.Thread(
            target=sample_threads, args=(stop_sampling,), daemon=True
        )
        sampler.start()
        try:
            report = run_connection_load(
                "127.0.0.1",
                server.port,
                recall_codes,
                requests=max(192, 3 * connections),
                connections=connections,
                images_per_request=SWEEP_IMAGES_PER_REQUEST,
                timeout=180.0,
            )
        finally:
            stop_sampling.set()
            sampler.join(2.0)
            if frontend == "async":
                stop_async_server(server)
            else:
                stop_server(server)
        assert report.errors == 0 and report.rejected == 0, (
            f"{frontend} frontend at C={connections}: "
            f"{report.errors} errors, {report.rejected} rejected"
        )
        point = report.as_dict()
        point["connections"] = connections
        point["server_threads_peak"] = max(peak_threads) - baseline_threads
        return point

    # Per connection count, the two front ends run back to back and each
    # gets two trials (best-of-2 per frontend): adjacent-in-time pairs
    # cancel machine drift, and best-of-2 shakes single-run scheduler
    # noise out of a throughput *comparison* on a one-core runner.
    sweep = {"threaded": [], "async": []}
    for connections in CONNECTION_SWEEP:
        best = {}
        for frontend in ("threaded", "async", "threaded", "async"):
            point = measure(frontend, connections)
            held = best.get(frontend)
            if held is None or point["images_per_second"] > held["images_per_second"]:
                best[frontend] = point
        for frontend in ("threaded", "async"):
            sweep[frontend].append(best[frontend])

    _merge_bench_section("connection_sweep", sweep)
    lines = []
    for frontend in ("threaded", "async"):
        for point in sweep[frontend]:
            lines.append(
                f"{frontend:<8s} C={point['connections']:<5d} "
                f"{point['images_per_second']:8.1f} images/s "
                f"(p99 {point['latency']['p99_ms']:7.1f} ms, "
                f"{point['server_threads_peak']:4d} extra threads)"
            )
    write_result("serving_connections", "\n".join(lines))

    by_count = {
        connections: (threaded_point, async_point)
        for connections, threaded_point, async_point in zip(
            CONNECTION_SWEEP, sweep["threaded"], sweep["async"]
        )
    }
    for connections, (threaded_point, async_point) in by_count.items():
        threaded_ips = threaded_point["images_per_second"]
        async_ips = async_point["images_per_second"]
        if connections >= 256:
            # The CI floor: the async frontend must never trail the
            # threaded reference by more than 10% at high connection
            # counts (on multi-core hardware it should win outright).
            assert async_ips > threaded_ips * 0.90, (
                f"async JSON frontend ({async_ips:.0f} images/s) fell behind the "
                f"threaded server ({threaded_ips:.0f} images/s) at C={connections}"
            )
            # The resource story is unconditional: thread-per-connection
            # scales threads with C, the event loop does not.
            assert (
                async_point["server_threads_peak"]
                < threaded_point["server_threads_peak"]
            ), (
                f"async frontend used {async_point['server_threads_peak']} threads "
                f"vs threaded {threaded_point['server_threads_peak']} at "
                f"C={connections}"
            )


# --------------------------------------------------------------------- #
# Encode cost: JSON vs native binary on the same batch
# --------------------------------------------------------------------- #

#: Batch sizes for the JSON/binary comparison (rows per request).
ENCODE_BATCH_SIZES = (64, 256, 1024)
#: Images per protocol per batch size (amortises connection setup).
ENCODE_TARGET_IMAGES = 4096
#: The satellite requirement: binary beats JSON by this factor at the
#: largest batch, where per-row text cost dominates the JSON path.
REQUIRED_BINARY_SPEEDUP = 1.5
#: Geometry of the encode-cost module: production feature width (so the
#: JSON text cost per row is the real one) on an *ideal* crossbar.  With
#: parasitics on, the per-row MNA solve is ~200 us — it swamps both
#: encodings equally and the comparison measures the engine, not the
#: wire.  The ideal solve leaves serialization as the dominant cost,
#: which is exactly what this section exists to compare.
ENCODE_FEATURES = 128
ENCODE_TEMPLATES = 6
ENCODE_SEED = 11
#: Service shape for the encode runs: one 512-row micro-batch window
#: keeps the batcher out of the way of the serialization measurement.
ENCODE_MAX_BATCH = 512


class _CountingProxy:
    """Minimal byte-counting TCP forwarder for the bytes-on-wire numbers."""

    def __init__(self, upstream_port: int) -> None:
        import socket as socket_module
        import threading

        self._socket = socket_module
        self._upstream_port = upstream_port
        self._listener = socket_module.create_server(("127.0.0.1", 0), backlog=4)
        self.port = self._listener.getsockname()[1]
        self.to_server = 0
        self.to_client = 0
        self._lock = threading.Lock()
        self._threading = threading
        threading.Thread(target=self._accept, daemon=True).start()

    def _accept(self) -> None:
        while True:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            upstream = self._socket.create_connection(
                ("127.0.0.1", self._upstream_port), timeout=10.0
            )
            for source, sink, attribute in (
                (client, upstream, "to_server"),
                (upstream, client, "to_client"),
            ):
                self._threading.Thread(
                    target=self._pump, args=(source, sink, attribute), daemon=True
                ).start()

    def _pump(self, source, sink, attribute) -> None:
        while True:
            try:
                chunk = source.recv(65536)
            except OSError:
                break
            if not chunk:
                break
            with self._lock:
                setattr(self, attribute, getattr(self, attribute) + len(chunk))
            try:
                sink.sendall(chunk)
            except OSError:
                break
        for sock in (source, sink):
            try:
                sock.close()
            except OSError:
                pass

    def close(self) -> None:
        self._listener.close()


def test_encode_cost_json_vs_binary(full_pipeline, recall_codes, write_result):
    """Same batches, two encodings: JSON text vs raw little-endian arrays.

    Measures end-to-end images/s and exact bytes-on-wire (through a
    counting proxy) for identical recall batches over the JSON API and
    the native binary endpoint of the async front end.  The comparison
    runs on the production 128-code row shape over an ideal crossbar
    (see ``ENCODE_FEATURES``): serialization is then the dominant
    per-row cost, and the binary path must clear
    ``REQUIRED_BINARY_SPEEDUP`` over JSON at the largest batch, where
    the per-row ``json.dumps``/``json.loads``/base-10 cost is the whole
    story.  A second subsection runs one bulk binary request through the
    *full* parasitic pipeline and records what fraction of the offline
    engine ceiling (``BENCH_throughput.json``) survives the entire
    serving stack.
    """
    import time

    import numpy as np

    from repro.core.amm import AssociativeMemoryModule
    from repro.serving import BinaryRecognitionClient, start_async_server, stop_async_server

    rng = np.random.default_rng(ENCODE_SEED)
    templates = rng.integers(0, 32, size=(ENCODE_FEATURES, ENCODE_TEMPLATES))
    amm = AssociativeMemoryModule.from_templates(
        templates, seed=ENCODE_SEED, include_parasitics=False
    )
    pool = rng.integers(0, 32, size=(max(ENCODE_BATCH_SIZES), ENCODE_FEATURES))
    service = RecognitionService(
        amm,
        max_batch_size=ENCODE_MAX_BATCH,
        max_wait=MAX_WAIT_SECONDS,
        max_queue_depth=4096,
        workers=WORKERS,
    )
    server = start_async_server(service, port=0, binary_port=0)
    points = []
    try:
        for batch_size in ENCODE_BATCH_SIZES:
            codes = pool[:batch_size]
            seeds = list(range(batch_size))
            repeats = max(1, ENCODE_TARGET_IMAGES // batch_size)

            with RecognitionClient("127.0.0.1", server.port, timeout=120.0) as client:
                begin = time.perf_counter()
                for _ in range(repeats):
                    json_rows = client.recognise_many(codes, seeds=seeds)
                json_seconds = time.perf_counter() - begin
            with BinaryRecognitionClient(
                "127.0.0.1", server.binary_port, timeout=120.0
            ) as client:
                begin = time.perf_counter()
                for _ in range(repeats):
                    binary_result = client.recognise_batch(codes, seeds=seeds)
                binary_seconds = time.perf_counter() - begin
            assert binary_result.failed == 0
            # The two encodings answer identically, row for row.
            assert [row["winner"] for row in json_rows] == binary_result.winner.tolist()

            # Exact bytes-on-wire for one batch of each encoding.
            json_proxy = _CountingProxy(server.port)
            with RecognitionClient("127.0.0.1", json_proxy.port, timeout=120.0) as client:
                client.recognise_many(codes, seeds=seeds)
            json_proxy.close()
            binary_proxy = _CountingProxy(server.binary_port)
            with BinaryRecognitionClient(
                "127.0.0.1", binary_proxy.port, timeout=120.0
            ) as client:
                client.recognise_batch(codes, seeds=seeds)
            binary_proxy.close()

            images = batch_size * repeats
            points.append(
                {
                    "batch_size": batch_size,
                    "repeats": repeats,
                    "json_images_per_second": images / json_seconds,
                    "binary_images_per_second": images / binary_seconds,
                    "binary_speedup": json_seconds / binary_seconds,
                    "json_bytes_to_server": json_proxy.to_server,
                    "json_bytes_to_client": json_proxy.to_client,
                    "binary_bytes_to_server": binary_proxy.to_server,
                    "binary_bytes_to_client": binary_proxy.to_client,
                    "wire_bytes_ratio_json_over_binary": (
                        (json_proxy.to_server + json_proxy.to_client)
                        / max(1, binary_proxy.to_server + binary_proxy.to_client)
                    ),
                }
            )
    finally:
        stop_async_server(server)

    # Full-pipeline ceiling: the same bulk binary request, but through
    # the real parasitic 128x40 engine — how much of the offline
    # throughput headline survives quotas, micro-batching, the event
    # loop and the wire.
    full_service = RecognitionService(
        full_pipeline.amm,
        max_batch_size=256,
        max_wait=MAX_WAIT_SECONDS,
        max_queue_depth=4096,
        workers=WORKERS,
    )
    full_server = start_async_server(full_service, port=0, binary_port=0)
    try:
        full_codes = np.tile(np.asarray(recall_codes), (8, 1))[:1024]
        full_seeds = list(range(full_codes.shape[0]))
        with BinaryRecognitionClient(
            "127.0.0.1", full_server.binary_port, timeout=120.0
        ) as client:
            client.recognise_batch(full_codes, seeds=full_seeds)  # warm
            begin = time.perf_counter()
            for _ in range(3):
                client.recognise_batch(full_codes, seeds=full_seeds)
            full_seconds = time.perf_counter() - begin
    finally:
        stop_async_server(full_server)
    full_binary_ips = 3 * full_codes.shape[0] / full_seconds

    section = {
        "points": points,
        "module": {
            "features": ENCODE_FEATURES,
            "templates": ENCODE_TEMPLATES,
            "include_parasitics": False,
        },
        "full_pipeline_binary_images_per_second": full_binary_ips,
    }
    engine_ceiling = None
    throughput_path = OUTPUT_PATH.parent / "BENCH_throughput.json"
    if throughput_path.exists():
        engine_ceiling = json.loads(throughput_path.read_text())["best"][
            "images_per_second"
        ]
        section["engine_ceiling_images_per_second"] = engine_ceiling
        section["binary_fraction_of_engine_ceiling"] = (
            full_binary_ips / engine_ceiling
        )
    _merge_bench_section("encode_cost", section)

    lines = []
    for point in points:
        lines.append(
            f"batch={point['batch_size']:<5d} "
            f"json {point['json_images_per_second']:8.1f} images/s "
            f"({point['json_bytes_to_server'] + point['json_bytes_to_client']:>9d} B)  "
            f"binary {point['binary_images_per_second']:8.1f} images/s "
            f"({point['binary_bytes_to_server'] + point['binary_bytes_to_client']:>9d} B)  "
            f"speedup {point['binary_speedup']:.2f}x, "
            f"wire ratio {point['wire_bytes_ratio_json_over_binary']:.2f}x"
        )
    lines.append(
        f"full parasitic pipeline, bulk binary: {full_binary_ips:8.1f} images/s"
    )
    if engine_ceiling is not None:
        lines.append(
            f"binary vs engine ceiling ({engine_ceiling:.0f} images/s): "
            f"{section['binary_fraction_of_engine_ceiling'] * 100:.1f}%"
        )
    write_result("serving_encode_cost", "\n".join(lines))

    largest = points[-1]
    assert largest["binary_speedup"] >= REQUIRED_BINARY_SPEEDUP, (
        f"binary endpoint reached only {largest['binary_speedup']:.2f}x over JSON "
        f"at batch={largest['batch_size']} (required {REQUIRED_BINARY_SPEEDUP}x)"
    )
