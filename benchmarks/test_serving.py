"""End-to-end serving benchmark: offered load through the HTTP path.

Boots the micro-batching recognition service (``repro.serving``) on the
reference 128x40 pipeline and measures what a client actually sees
through ``POST /recognise``:

* an **offered-load sweep**: end-to-end images/second and latency
  percentiles versus client concurrency, with the micro-batcher
  coalescing concurrent requests into engine batches;
* a **batch-window sweep**: the same load under different ``max_wait``
  windows (0 = dispatch immediately), the knob trading tail latency for
  batch fill;
* the **batch_size=1 dispatch reference**: the same service shape but
  every request dispatched through the legacy per-sample sparse solve
  (the repository-wide ``batch_size=1`` convention) — the baseline the
  micro-batching speedup is asserted against.

The measured trajectory is written to ``BENCH_serving.json`` at the
repository root (uploaded as a CI artifact next to
``BENCH_throughput.json``) so the serving headline can be tracked across
commits.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.serving import (
    RecognitionClient,
    RecognitionService,
    run_load,
    start_server,
    stop_server,
)

#: Where the serving trajectory is persisted.
OUTPUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serving.json"

#: Micro-batching configuration under test.
MAX_BATCH_SIZE = 64
MAX_WAIT_SECONDS = 2e-3
WORKERS = 2

#: Offered-load sweep: concurrent client threads.
CONCURRENCY_SWEEP = (1, 4, 16)
#: Batch-window sweep (seconds) at fixed concurrency.
WINDOW_SWEEP = (0.0, 2e-3, 8e-3)
WINDOW_CONCURRENCY = 8
#: Code vectors per HTTP request (an edge node aggregating its users);
#: each vector is queued as an independent recall request.
IMAGES_PER_REQUEST = 16
REQUESTS_PER_POINT = 96

#: The slow reference: requests dispatched one sparse MNA solve at a time.
BATCH1_REQUESTS = 12
BATCH1_IMAGES_PER_REQUEST = 2

#: The PR's headline requirements.
REQUIRED_SPEEDUP = 10.0
REQUIRED_IMAGES_PER_SECOND = 1000.0


@pytest.fixture(scope="module")
def recall_codes(full_pipeline, full_dataset):
    """Pre-extracted feature codes of the whole test corpus."""
    return full_pipeline.extractor.extract_many(full_dataset.test_images)


def _measure(service, codes, requests, concurrency, images_per_request):
    server = start_server(service, port=0)
    try:
        report = run_load(
            "127.0.0.1",
            server.port,
            codes,
            requests=requests,
            concurrency=concurrency,
            images_per_request=images_per_request,
        )
        with RecognitionClient("127.0.0.1", server.port) as client:
            stats = client.stats()
    finally:
        stop_server(server)
    assert report.errors == 0 and report.rejected == 0
    point = report.as_dict()
    point["server"] = {
        "mean_batch_fill": stats["batches"]["mean_fill"],
        "batches_dispatched": stats["batches"]["dispatched"],
        "queue_depth_max": stats["queue_depth"]["max"],
        "p99_ms": stats["latency"]["p99_ms"],
    }
    return point


def test_http_serving_throughput(full_pipeline, full_dataset, recall_codes, write_result):
    amm = full_pipeline.amm

    # batch_size=1 dispatch: the legacy per-sample reference, measured on a
    # small request budget because each image is a full sparse MNA solve.
    batch1_service = RecognitionService(
        amm,
        max_batch_size=1,
        max_wait=0.0,
        workers=WORKERS,
        legacy_per_sample=True,
    )
    batch1 = _measure(
        batch1_service,
        recall_codes,
        requests=BATCH1_REQUESTS,
        concurrency=4,
        images_per_request=BATCH1_IMAGES_PER_REQUEST,
    )

    def micro_batched_service(max_wait=MAX_WAIT_SECONDS):
        return RecognitionService(
            amm,
            max_batch_size=MAX_BATCH_SIZE,
            max_wait=max_wait,
            workers=WORKERS,
        )

    concurrency_sweep = []
    for concurrency in CONCURRENCY_SWEEP:
        point = _measure(
            micro_batched_service(),
            recall_codes,
            requests=REQUESTS_PER_POINT,
            concurrency=concurrency,
            images_per_request=IMAGES_PER_REQUEST,
        )
        concurrency_sweep.append(point)

    window_sweep = []
    for max_wait in WINDOW_SWEEP:
        point = _measure(
            micro_batched_service(max_wait=max_wait),
            recall_codes,
            requests=REQUESTS_PER_POINT,
            concurrency=WINDOW_CONCURRENCY,
            images_per_request=IMAGES_PER_REQUEST,
        )
        point["max_wait_seconds"] = max_wait
        window_sweep.append(point)

    best = max(concurrency_sweep + window_sweep, key=lambda p: p["images_per_second"])
    speedup = best["images_per_second"] / batch1["images_per_second"]
    payload = {
        "array": {"rows": amm.crossbar.rows, "columns": amm.crossbar.columns},
        "service": {
            "max_batch_size": MAX_BATCH_SIZE,
            "max_wait_seconds": MAX_WAIT_SECONDS,
            "workers": WORKERS,
        },
        "batch1_dispatch": batch1,
        "concurrency_sweep": concurrency_sweep,
        "window_sweep": window_sweep,
        "best": best,
        "speedup_vs_batch1_dispatch": speedup,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"batch1 dispatch: {batch1['images_per_second']:8.1f} images/s "
        f"(p99 {batch1['latency']['p99_ms']:7.1f} ms)",
    ]
    for point in concurrency_sweep:
        lines.append(
            f"concurrency={point['concurrency']:<3d}  "
            f"{point['images_per_second']:8.1f} images/s "
            f"(p99 {point['latency']['p99_ms']:6.1f} ms, "
            f"fill {point['server']['mean_batch_fill']:.1f})"
        )
    for point in window_sweep:
        lines.append(
            f"window={point['max_wait_seconds'] * 1e3:4.1f} ms     "
            f"{point['images_per_second']:8.1f} images/s "
            f"(p99 {point['latency']['p99_ms']:6.1f} ms, "
            f"fill {point['server']['mean_batch_fill']:.1f})"
        )
    lines.append(f"micro-batching speedup vs batch1 dispatch: {speedup:.1f}x")
    write_result("serving", "\n".join(lines))

    assert best["images_per_second"] >= REQUIRED_IMAGES_PER_SECOND, (
        f"HTTP serving reached only {best['images_per_second']:.0f} images/s "
        f"(required {REQUIRED_IMAGES_PER_SECOND:.0f})"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"micro-batching reached only {speedup:.1f}x over batch_size=1 dispatch "
        f"(required {REQUIRED_SPEEDUP}x)"
    )


def test_served_results_match_offline_recall(full_pipeline, recall_codes):
    """The HTTP path returns exactly what the seeded engine returns offline."""
    amm = full_pipeline.amm
    subset = recall_codes[:24]
    seeds = list(range(24))
    service = RecognitionService(amm, max_batch_size=16, max_wait=1e-3, workers=WORKERS)
    server = start_server(service, port=0)
    try:
        with RecognitionClient("127.0.0.1", server.port) as client:
            served = client.recognise_many(subset, seeds=seeds)
    finally:
        stop_server(server)
    reference = amm.recognise_batch_seeded(subset, seeds)
    for index, result in enumerate(served):
        assert result["winner"] == reference[index].winner
        assert result["dom_code"] == reference[index].dom_code
        assert result["accepted"] == reference[index].accepted
        assert result["tie"] == reference[index].tie
