"""Extended study: scaling of the associative memory with array size.

Not a figure of the paper, but a quantitative backing for its scalability
claim ("owing to the global digital control, it is easily scalable with
number of input as well as required bit precision"): power of the proposed
design versus the MS-CMOS WTA as the number of stored templates grows, and
detection margin / static power as the pattern dimensionality grows.
"""

from __future__ import annotations


from repro.analysis.report import format_si, format_table
from repro.analysis.scaling import feature_length_sweep, template_count_sweep
from repro.core.config import DesignParameters

TEMPLATE_COUNTS = (10, 20, 40, 80, 160)
FEATURE_LENGTHS = (32, 64, 128, 256)


def test_template_count_scaling(benchmark, reference_parameters, write_result):
    points = benchmark(lambda: template_count_sweep(TEMPLATE_COUNTS, reference_parameters))
    write_result(
        "scaling_template_count",
        format_table(
            ["Templates", "Spin-CMOS power", "MS-CMOS [17] power", "Power ratio"],
            [
                [
                    str(point.templates),
                    format_si(point.spin_power, "W"),
                    format_si(point.mscmos_power, "W"),
                    f"{point.power_ratio:.0f}x",
                ]
                for point in points
            ],
        ),
    )
    spin_powers = [point.spin_power for point in points]
    ratios = [point.power_ratio for point in points]
    # Proposed-design power grows roughly linearly with the template count
    # (16x templates -> 10-20x power) and the advantage over MS-CMOS
    # persists at every size.
    assert 10 < spin_powers[-1] / spin_powers[0] < 20
    assert all(ratio > 30 for ratio in ratios)


def test_feature_length_scaling(benchmark, write_result):
    parameters = DesignParameters(template_shape=(32, 1), num_templates=8)
    points = benchmark.pedantic(
        lambda: feature_length_sweep(FEATURE_LENGTHS, templates=8, parameters=parameters, seed=4),
        rounds=1,
        iterations=1,
    )
    write_result(
        "scaling_feature_length",
        format_table(
            ["Feature length", "Mean detection margin", "Static power (measured)"],
            [
                [str(point.features), f"{point.mean_margin * 100:.2f}%", format_si(point.static_power, "W")]
                for point in points
            ],
        ),
    )
    margins = [point.mean_margin for point in points]
    # Margins remain positive (the module still resolves the winner) even as
    # the column wires lengthen, and every configuration stays well below
    # the MS-CMOS milliwatt power scale.
    assert all(margin > 0 for margin in margins)
    assert all(point.static_power < 1e-3 for point in points)
