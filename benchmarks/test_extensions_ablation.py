"""Extensions of Section 5: hierarchical, partitioned and convolutional use.

The paper's closing section argues the basic module generalises to (a)
hierarchically clustered template sets, (b) patterns partitioned across
modular RCM blocks and (c) convolutional feature extraction.  These benches
evaluate the implementations in :mod:`repro.extensions` on the synthetic
face corpus and record accuracy/energy against the flat module and the
digital baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import format_si, format_table
from repro.core.amm import AssociativeMemoryModule
from repro.core.config import DesignParameters
from repro.datasets.features import FeatureExtractor, build_templates, templates_to_matrix
from repro.extensions.convolution import CrossbarConvolutionEngine
from repro.extensions.hierarchical import HierarchicalAssociativeMemory
from repro.extensions.partitioned import PartitionedAssociativeMemory


@pytest.fixture(scope="module")
def extension_setup(full_dataset):
    """Templates/features for 20 subjects on an 8x8 (64-element) geometry."""
    parameters = DesignParameters(template_shape=(8, 8), num_templates=20)
    extractor = FeatureExtractor(feature_shape=(8, 8), bits=5)
    subset = full_dataset.subset(20)
    templates = build_templates(subset.images, subset.labels, extractor)
    matrix, labels = templates_to_matrix(templates)
    features = extractor.extract_many(subset.images[::4])
    true_labels = subset.labels[::4]
    return parameters, matrix, labels, features, true_labels


def _accuracy(recogniser, features, true_labels) -> float:
    correct = 0
    for codes, label in zip(features, true_labels):
        result = recogniser.recognise(codes)
        winner = result.winner if hasattr(result, "winner") else result
        if winner == int(label):
            correct += 1
    return correct / len(true_labels)


def test_hierarchical_extension(benchmark, extension_setup, write_result):
    parameters, matrix, labels, features, true_labels = extension_setup

    def run():
        flat = AssociativeMemoryModule.from_templates(
            matrix, parameters=parameters, column_labels=labels, seed=3
        )
        hierarchy = HierarchicalAssociativeMemory(
            matrix, labels=labels, clusters=4, parameters=parameters, seed=3
        )
        return {
            "flat_accuracy": _accuracy(flat, features, true_labels),
            "hier_accuracy": _accuracy(hierarchy, features, true_labels),
            "routing": hierarchy.evaluate(features, true_labels)["routing_accuracy"],
            "flat_energy": hierarchy.flat_energy_per_recognition(),
            "hier_energy": hierarchy.energy_per_recognition(),
            "active_columns": hierarchy.active_columns_per_recognition(),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "extension_hierarchical",
        format_table(
            ["Quantity", "Value"],
            [
                ["Flat module accuracy", f"{results['flat_accuracy'] * 100:.1f}%"],
                ["Hierarchical accuracy", f"{results['hier_accuracy'] * 100:.1f}%"],
                ["Cluster routing accuracy", f"{results['routing'] * 100:.1f}%"],
                ["Flat energy / recognition", format_si(results["flat_energy"], "J")],
                ["Hierarchical energy / recognition", format_si(results["hier_energy"], "J")],
                ["Active columns / recognition", f"{results['active_columns']:.1f} of 20"],
            ],
        ),
    )
    # The hierarchy trades a little accuracy for fewer active columns and
    # lower evaluation energy.
    assert results["hier_energy"] < results["flat_energy"]
    assert results["hier_accuracy"] >= results["flat_accuracy"] - 0.25
    assert results["routing"] >= 0.5


def test_partitioned_extension(benchmark, extension_setup, write_result):
    parameters, matrix, labels, features, true_labels = extension_setup

    def run():
        flat = AssociativeMemoryModule.from_templates(
            matrix, parameters=parameters, column_labels=labels, seed=5
        )
        rows = [("flat (1 block)", _accuracy(flat, features, true_labels), None)]
        for partitions in (2, 4):
            module = PartitionedAssociativeMemory(
                matrix, labels=labels, partitions=partitions, parameters=parameters, seed=5
            )
            rows.append(
                (
                    f"{partitions} modular blocks",
                    _accuracy(module, features, true_labels),
                    module.energy_per_recognition(),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "extension_partitioned",
        format_table(
            ["Configuration", "Accuracy", "Energy / recognition"],
            [
                [label, f"{acc * 100:.1f}%", format_si(e, "J") if e else "-"]
                for label, acc, e in rows
            ],
        ),
    )
    flat_accuracy = rows[0][1]
    # Partitioning costs some accuracy (per-block quantisation) but stays
    # usable, and more partitions cost more conversion energy.
    assert rows[1][1] >= flat_accuracy - 0.3
    assert rows[2][2] > rows[1][2]


def test_convolution_extension(benchmark, full_dataset, write_result):
    kernels = np.stack(
        [
            np.outer(np.ones(4), np.linspace(0, 1, 4)),      # vertical gradient
            np.outer(np.linspace(0, 1, 4), np.ones(4)),      # horizontal gradient
            np.pad(np.ones((2, 2)), 1),                       # centre blob
            np.full((4, 4), 0.5),                             # uniform average
        ]
    )
    engine = CrossbarConvolutionEngine(kernels, bits=5, stride=4, seed=9)
    image = full_dataset.images[0][:32, :32]

    def run():
        return engine.convolve(image)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "extension_convolution",
        format_table(
            ["Quantity", "Value"],
            [
                ["Feature maps", str(result.feature_maps.shape)],
                ["Patches evaluated", str(result.patches_evaluated)],
                ["Spin-CMOS energy", format_si(result.energy, "J")],
                ["45nm digital MAC energy", format_si(result.digital_energy, "J")],
                ["Energy ratio (digital / spin)", f"{result.energy_ratio:.0f}x"],
            ],
        ),
    )
    reference = engine.reference_convolution(image)
    agreement = np.mean(result.feature_maps.argmax(axis=0) == reference.argmax(axis=0))
    # The crossbar layer reproduces the exact convolution's per-pixel
    # dominant kernel most of the time and wins on energy by a wide margin.
    assert agreement >= 0.5
    assert result.energy_ratio > 10
