"""Recall-throughput benchmark: per-sample loop versus batched engine.

Times associative recall of the ATT-like test corpus through the
reference 128x40 pipeline two ways:

* the legacy per-sample path (``AssociativeMemoryModule.recognise`` in a
  loop: one sparse-MNA assembly + factorisation + SAR conversion per
  image), and
* the batched engine (``recognise_batch``: one factorisation of the
  static network amortised over the corpus, per-sample Woodbury updates
  and a vectorised SAR winner-take-all), swept over batch sizes.

The measured trajectory (images/second, speedup, engine setup cost) is
written to ``BENCH_throughput.json`` at the repository root so the
headline can be tracked across commits.  The benchmark also re-asserts
the engine contract on the timed inputs: identical winners, DOM codes
and tie flags between the two paths.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

#: Where the throughput trajectory is persisted.
OUTPUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

#: Images timed through the (slow) per-sample loop.
PER_SAMPLE_IMAGES = 24

#: Batch sizes swept through the batched engine.
BATCH_SIZES = (16, 64, 256, None)

#: The PR's headline requirement: batched recall at least this many times
#: faster than the per-sample loop.
REQUIRED_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def recall_codes(full_pipeline, full_dataset):
    """Pre-extracted feature codes of the whole test corpus."""
    return full_pipeline.extractor.extract_many(full_dataset.test_images)


def test_batched_recall_throughput(full_pipeline, full_dataset, recall_codes, write_result):
    amm = full_pipeline.amm
    corpus = recall_codes.shape[0]

    # Per-sample baseline: the legacy loop, one sparse solve per image.
    subset = recall_codes[:PER_SAMPLE_IMAGES]
    start = time.perf_counter()
    loop_results = [amm.recognise(codes) for codes in subset]
    per_sample_seconds = time.perf_counter() - start
    per_sample_ips = PER_SAMPLE_IMAGES / per_sample_seconds

    # Engine setup (network factorisation) is a one-time cost; measure it
    # separately so the steady-state throughput is honest about it.
    start = time.perf_counter()
    warmup = amm.recognise_batch(subset)
    setup_seconds = time.perf_counter() - start

    # The engine must agree with the loop on every discrete output.
    for index, scalar in enumerate(loop_results):
        assert int(warmup.winner_column[index]) == scalar.winner_column
        assert int(warmup.dom_code[index]) == scalar.dom_code
        assert bool(warmup.tie[index]) == scalar.tie

    trajectory = []
    for batch_size in BATCH_SIZES:
        step = corpus if batch_size is None else batch_size
        start = time.perf_counter()
        for begin in range(0, corpus, step):
            amm.recognise_batch(recall_codes[begin : begin + step])
        elapsed = time.perf_counter() - start
        trajectory.append(
            {
                "batch_size": step,
                "images": corpus,
                "seconds": elapsed,
                "images_per_second": corpus / elapsed,
                "speedup_vs_per_sample": (corpus / elapsed) / per_sample_ips,
            }
        )

    best = max(trajectory, key=lambda point: point["images_per_second"])
    payload = {
        "dataset": {
            "classes": int(full_dataset.num_classes),
            "test_images": int(corpus),
        },
        "array": {
            "rows": int(amm.crossbar.rows),
            "columns": int(amm.crossbar.columns),
        },
        "per_sample": {
            "images": PER_SAMPLE_IMAGES,
            "seconds": per_sample_seconds,
            "images_per_second": per_sample_ips,
        },
        "engine_setup_seconds": setup_seconds,
        "batched": trajectory,
        "best": best,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"per-sample loop: {per_sample_ips:8.1f} images/s "
        f"({PER_SAMPLE_IMAGES} images)",
        f"engine setup:    {setup_seconds * 1e3:8.1f} ms (one-time)",
    ]
    for point in trajectory:
        lines.append(
            f"batch={point['batch_size']:<4d}     {point['images_per_second']:8.1f} "
            f"images/s ({point['speedup_vs_per_sample']:.1f}x)"
        )
    write_result("throughput", "\n".join(lines))

    assert best["speedup_vs_per_sample"] >= REQUIRED_SPEEDUP, (
        f"batched recall reached only {best['speedup_vs_per_sample']:.1f}x "
        f"of the per-sample loop (required {REQUIRED_SPEEDUP}x)"
    )


def test_batched_evaluation_matches_per_sample_accuracy(full_pipeline, full_dataset):
    """The batched evaluate path reproduces per-sample accuracy statistics."""
    batched = full_pipeline.evaluate(full_dataset, limit=60, batch_size=None)
    per_sample = full_pipeline.evaluate(full_dataset, limit=60, batch_size=1)
    assert batched.accuracy == per_sample.accuracy
    assert batched.acceptance_rate == per_sample.acceptance_rate
    assert batched.tie_rate == per_sample.tie_rate
    assert batched.count == per_sample.count
