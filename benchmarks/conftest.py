"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section (see DESIGN.md for the experiment index).  The reproduced data is
written as plain text into ``benchmarks/results/`` so that it can be
inspected after a ``pytest benchmarks/ --benchmark-only`` run and compared
against the paper values recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib


import pytest

from repro.core.config import default_parameters
from repro.core.pipeline import build_pipeline
from repro.datasets.attlike import load_default_dataset
from repro.datasets.features import FeatureExtractor, build_templates, templates_to_matrix

#: Directory where every benchmark stores its reproduced table/figure data.
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory for the regenerated tables/figures."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_result(results_dir):
    """Callable that persists one reproduced artefact as text."""

    def _write(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _write


@pytest.fixture(scope="session")
def reference_parameters():
    """The paper's reference design point (Table 2)."""
    return default_parameters()


@pytest.fixture(scope="session")
def full_dataset():
    """The 40-subject x 10-image synthetic corpus (AT&T stand-in)."""
    return load_default_dataset(seed=2013)


@pytest.fixture(scope="session")
def reference_templates(full_dataset, reference_parameters):
    """The 128x40 template matrix and its class labels."""
    extractor = FeatureExtractor(
        feature_shape=reference_parameters.template_shape,
        bits=reference_parameters.template_bits,
    )
    templates = build_templates(full_dataset.images, full_dataset.labels, extractor)
    matrix, labels = templates_to_matrix(templates)
    return matrix, labels


@pytest.fixture(scope="session")
def full_pipeline(full_dataset, reference_parameters):
    """The programmed 128x40 spin-CMOS face-recognition pipeline."""
    return build_pipeline(full_dataset, parameters=reference_parameters, seed=2013)


@pytest.fixture(scope="session")
def margin_parameters(reference_parameters):
    """A reduced module (64 features, 10 templates) for the margin sweeps.

    The Fig. 9 sweeps rebuild and re-solve the crossbar for every sweep
    point; a 64x10 module preserves the physics (wire drops per cell,
    DAC loading) at a fraction of the 128x40 solve time.
    """
    from repro.core.config import DesignParameters

    return DesignParameters(
        template_shape=(8, 8),
        num_templates=10,
        memristor_r_min_ohm=reference_parameters.memristor_r_min_ohm,
        memristor_r_max_ohm=reference_parameters.memristor_r_max_ohm,
    )


@pytest.fixture(scope="session")
def margin_templates(full_dataset, margin_parameters):
    """Template matrix for the reduced margin-analysis module."""
    extractor = FeatureExtractor(
        feature_shape=margin_parameters.template_shape,
        bits=margin_parameters.template_bits,
    )
    subset = full_dataset.subset(margin_parameters.num_templates)
    templates = build_templates(subset.images, subset.labels, extractor)
    matrix, _ = templates_to_matrix(templates)
    return matrix
