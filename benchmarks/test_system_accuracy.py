"""End-to-end system accuracy of the full 128x40 spin-CMOS AMM (E-SYS).

The paper states that with ΔV = 30 mV and the chosen conductance range the
matching accuracy of the hardware stays "close to the ideal case".  This
benchmark pushes a stratified sample of the 400 test images through the
complete hardware model — feature extraction, DTCS-DAC conversion,
parasitic crossbar solve, DWN SAR conversion and winner tracking — and
compares the resulting accuracy against the ideal-comparison accuracy of
the same templates.  It also cross-checks the measured static power and
switching activity against the analytic power model used for Table 1.
"""

from __future__ import annotations

import pytest

from repro.analysis.accuracy import ideal_matching_accuracy
from repro.analysis.report import format_si, format_table
from repro.core.power import SpinAmmPowerModel

#: Number of test images pushed through the full hardware model.
EVALUATED_IMAGES = 120


def test_system_accuracy(benchmark, full_pipeline, full_dataset, reference_parameters, write_result):
    evaluation = benchmark.pedantic(
        lambda: full_pipeline.evaluate(full_dataset, limit=EVALUATED_IMAGES),
        rounds=1,
        iterations=1,
    )
    ideal = ideal_matching_accuracy(
        full_dataset,
        feature_shape=reference_parameters.template_shape,
        bits=reference_parameters.template_bits,
    )

    sample = full_pipeline.classify_image(full_dataset.images[0])
    model = SpinAmmPowerModel(reference_parameters)
    measured = model.power_from_measurement(sample.static_power, sample.events)
    analytic = model.breakdown()

    table = format_table(
        ["Quantity", "Value"],
        [
            ["Images evaluated", str(evaluation.count)],
            ["Hardware accuracy", f"{evaluation.accuracy * 100:.1f}%"],
            ["Ideal-comparison accuracy", f"{ideal.accuracy * 100:.1f}%"],
            ["Acceptance rate", f"{evaluation.acceptance_rate * 100:.1f}%"],
            ["Tie rate", f"{evaluation.tie_rate * 100:.1f}%"],
            ["Measured static power", format_si(sample.static_power, "W")],
            ["Measured total power", format_si(measured.total, "W")],
            ["Analytic total power", format_si(analytic.total, "W")],
        ],
    )
    write_result("system_accuracy_full_amm", table)

    # The hardware accuracy must remain within a modest gap of the ideal
    # comparison ("close to the ideal case") and be far above chance (2.5 %).
    assert ideal.accuracy > 0.9
    assert evaluation.accuracy >= ideal.accuracy - 0.15
    assert evaluation.accuracy > 0.75
    # Nearly every genuine face is accepted by the DOM threshold.
    assert evaluation.acceptance_rate > 0.9
    # Measured and analytic total power agree within a small factor (the
    # measured value includes the termination/sneak losses the analytic
    # Table-1 model neglects).
    assert measured.total == pytest.approx(analytic.total, rel=2.0)
    assert measured.total < 0.5e-3
