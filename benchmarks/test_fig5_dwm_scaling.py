"""Fig. 5 — domain-wall magnet scaling (E-F5b, E-F5c).

* Fig. 5b: the critical (threshold) switching current falls as the device
  cross-section is scaled down.
* Fig. 5c: for a fixed write current, smaller devices switch faster.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_si, format_table
from repro.devices.dwm import DomainWallMagnet

SCALES = (1.4, 1.2, 1.0, 0.8, 0.6, 0.4)


def _scaling_data():
    magnet = DomainWallMagnet()
    write_current = 2.0 * magnet.critical_current
    rows = []
    for scale in SCALES:
        scaled = magnet.scaled(scale)
        rows.append(
            (
                scale,
                scaled.critical_current,
                scaled.switching_time(write_current),
                scaled.thermal_stability_factor,
            )
        )
    return rows


def test_fig5b_critical_current(benchmark, write_result):
    rows = benchmark(_scaling_data)
    table = format_table(
        ["Scale", "Critical current", "Switching time @ 2x nominal Ic", "Barrier (kT)"],
        [
            [f"{s:.1f}x", format_si(ic, "A"), format_si(t, "s"), f"{kt:.1f}"]
            for s, ic, t, kt in rows
        ],
    )
    write_result("fig5b_dwm_critical_current", table)

    currents = [ic for _, ic, _, _ in rows]
    # Fig. 5b: monotonically decreasing critical current with scaling.
    assert all(a > b for a, b in zip(currents, currents[1:]))
    # The nominal device threshold sits at the ~1 uA scale of Table 2.
    nominal = dict((s, ic) for s, ic, _, _ in rows)[1.0]
    assert 0.3e-6 < nominal < 1.5e-6


def test_fig5c_switching_time(benchmark, write_result):
    magnet = DomainWallMagnet()
    fixed_current = 2.0 * magnet.critical_current

    def sweep():
        return [
            (scale, magnet.scaled(scale).switching_time(fixed_current))
            for scale in SCALES
            if magnet.scaled(scale).critical_current < fixed_current
        ]

    rows = benchmark(sweep)
    table = format_table(
        ["Scale", "Switching time @ fixed current"],
        [[f"{s:.1f}x", format_si(t, "s")] for s, t in rows],
    )
    write_result("fig5c_dwm_switching_time", table)

    times = [t for _, t in rows]
    # Fig. 5c: smaller devices switch faster for the same write current.
    assert all(a > b for a, b in zip(times, times[1:]))
    # The nominal device meets the 1.5 ns switching time of Table 2.
    nominal_time = dict(rows)[1.0]
    assert nominal_time == np.float64(1.5e-9) or abs(nominal_time - 1.5e-9) < 0.2e-9
