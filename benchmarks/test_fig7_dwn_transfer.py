"""Fig. 7a — domain-wall neuron transfer characteristic (E-F7a).

The DWN acts as a current comparator with a hysteresis window set by its
switching threshold (2 x 1 µA for the Table-2 device).  The benchmark
sweeps the input current up and down, records the state trajectory and
verifies the hysteresis width; it also characterises the stochastic
(thermally-assisted) softening of the transition for the Eb = 20 kT
barrier quoted in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_si, format_table
from repro.devices.dwn import DomainWallNeuron, DwnConfig


def _transfer_sweep():
    neuron = DomainWallNeuron(config=DwnConfig(threshold_current=1e-6), seed=0)
    currents = np.linspace(-2.5e-6, 2.5e-6, 41)
    up = neuron.transfer_characteristic(currents)
    down = neuron.transfer_characteristic(currents[::-1])[::-1]
    return currents, up, down


def test_fig7a_transfer_characteristic(benchmark, write_result):
    currents, up, down = benchmark(_transfer_sweep)

    rows = [
        [format_si(current, "A"), f"{state_up:+d}", f"{state_down:+d}"]
        for current, state_up, state_down in zip(currents, up, down)
    ]
    write_result(
        "fig7a_dwn_transfer_characteristic",
        format_table(["Input current", "Up sweep state", "Down sweep state"], rows),
    )

    # Hysteresis: the up and down sweeps disagree only inside the +/-1 uA
    # threshold window.
    disagreement = currents[np.asarray(up) != np.asarray(down)]
    assert disagreement.size > 0
    assert disagreement.min() >= -1.0e-6 - 1e-12
    assert disagreement.max() <= 1.0e-6 + 1e-12
    # Far outside the window the comparator is ideal.
    assert all(np.asarray(up)[currents > 1.1e-6] == 1)
    assert all(np.asarray(up)[currents < -1.1e-6] == -1)


def test_fig7a_stochastic_softening(benchmark, write_result):
    config = DwnConfig(threshold_current=1e-6, stochastic=True, barrier_kt=20.0)
    neuron = DomainWallNeuron(config=config, seed=1)

    def probabilities():
        points = np.linspace(0.2e-6, 1.2e-6, 11)
        return points, np.array([neuron.switching_probability(p) for p in points])

    points, probability = benchmark(probabilities)
    rows = [
        [format_si(current, "A"), f"{p:.3g}"] for current, p in zip(points, probability)
    ]
    write_result(
        "fig7a_dwn_switching_probability",
        format_table(["Input current", "Switching probability (10 ns window)"], rows),
    )

    # Monotonic softened transition that saturates at 1 above threshold.
    assert np.all(np.diff(probability) >= -1e-12)
    assert probability[-1] == 1.0
    assert probability[0] < 0.05
