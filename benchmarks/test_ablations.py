"""Ablations of the design choices called out in DESIGN.md §5.

These benches quantify how much each modelling/design choice matters, on a
reduced 64x10 module driven by the synthetic face corpus:

* memristor write accuracy (3 % baseline vs 0.3 % precision writes vs
  parallel-cell composition) — accuracy against programming cost;
* wire parasitics on/off — how much the MNA solve changes the answer;
* per-cycle neuron pre-set on/off — the hysteresis-handling choice of the
  WTA model;
* input-source variation — robustness of the analog front end.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_si, format_table
from repro.core.amm import AssociativeMemoryModule
from repro.core.config import DesignParameters
from repro.crossbar.programming import TemplateProgrammer
from repro.datasets.features import FeatureExtractor, build_templates, templates_to_matrix


@pytest.fixture(scope="module")
def ablation_setup(full_dataset):
    """Reduced module geometry, templates and evaluation inputs."""
    parameters = DesignParameters(template_shape=(8, 8), num_templates=10)
    extractor = FeatureExtractor(feature_shape=(8, 8), bits=5)
    subset = full_dataset.subset(10)
    templates = build_templates(subset.images, subset.labels, extractor)
    matrix, labels = templates_to_matrix(templates)
    features = extractor.extract_many(subset.images[::2])
    true_labels = subset.labels[::2]
    return parameters, matrix, labels, features, true_labels


def _accuracy(amm, features, true_labels) -> float:
    correct = 0
    for codes, label in zip(features, true_labels):
        if amm.recognise(codes).winner == int(label):
            correct += 1
    return correct / len(true_labels)


def test_ablation_write_accuracy(benchmark, ablation_setup, write_result):
    parameters, matrix, labels, features, true_labels = ablation_setup

    def run():
        rows = []
        for label, write_accuracy, parallel in (
            ("3% write (paper baseline)", 0.03, 1),
            ("0.3% write (8-bit tuning)", 0.003, 1),
            ("3% write, 2 parallel cells", 0.03, 2),
        ):
            import dataclasses

            point = dataclasses.replace(parameters, memristor_write_accuracy=write_accuracy)
            programmer = TemplateProgrammer(
                memristor=point.memristor_model(seed=3),
                bits=point.template_bits,
                parallel_cells=parallel,
            )
            amm = AssociativeMemoryModule.from_templates(
                matrix, parameters=point, column_labels=labels, seed=3
            )
            accuracy = _accuracy(amm, features, true_labels)
            write_energy = programmer.write_energy(matrix.shape[0], matrix.shape[1])
            rows.append((label, accuracy, write_energy))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_write_accuracy",
        format_table(
            ["Programming scheme", "Accuracy", "One-time write energy"],
            [[label, f"{acc * 100:.1f}%", format_si(e, "J")] for label, acc, e in rows],
        ),
    )
    accuracies = [acc for _, acc, _ in rows]
    energies = [e for _, _, e in rows]
    # 3 % writes already deliver most of the accuracy (the paper's point),
    # while 0.3 % writes cost an order of magnitude more programming energy.
    assert accuracies[0] >= accuracies[1] - 0.1
    assert energies[1] > 5 * energies[0]


def test_ablation_parasitics_and_preset(benchmark, ablation_setup, write_result):
    parameters, matrix, labels, features, true_labels = ablation_setup

    def run():
        results = {}
        for label, include_parasitics in (("with parasitics", True), ("ideal wires", False)):
            amm = AssociativeMemoryModule.from_templates(
                matrix, parameters=parameters, column_labels=labels,
                include_parasitics=include_parasitics, seed=5,
            )
            results[label] = _accuracy(amm, features, true_labels)
        # Per-cycle preset ablation (the hysteresis-handling choice).
        amm_preset = AssociativeMemoryModule.from_templates(
            matrix, parameters=parameters, column_labels=labels, seed=5
        )
        amm_no_preset = AssociativeMemoryModule.from_templates(
            matrix, parameters=parameters, column_labels=labels, seed=5
        )
        amm_no_preset.wta.reset_neurons = False
        results["per-cycle preset"] = _accuracy(amm_preset, features, true_labels)
        results["no preset (stale hysteresis)"] = _accuracy(amm_no_preset, features, true_labels)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_parasitics_preset",
        format_table(
            ["Configuration", "Accuracy"],
            [[k, f"{v * 100:.1f}%"] for k, v in results.items()],
        ),
    )
    # Ideal wires can only help; the preset scheme must not be worse than
    # carrying stale neuron state across cycles.
    assert results["ideal wires"] >= results["with parasitics"] - 0.05
    assert results["per-cycle preset"] >= results["no preset (stale hysteresis)"] - 0.05
    assert results["with parasitics"] >= 0.6


def test_ablation_input_variation(benchmark, ablation_setup, write_result):
    parameters, matrix, labels, features, true_labels = ablation_setup

    def run():
        rows = []
        for sigma in (0.0, 0.02, 0.05, 0.10, 0.20):
            amm = AssociativeMemoryModule.from_templates(
                matrix, parameters=parameters, column_labels=labels,
                input_variation=sigma, seed=7,
            )
            rows.append((sigma, _accuracy(amm, features, true_labels)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_input_variation",
        format_table(
            ["Input-source variation (sigma)", "Accuracy"],
            [[f"{sigma * 100:.0f}%", f"{acc * 100:.1f}%"] for sigma, acc in rows],
        ),
    )
    accuracies = dict(rows)
    # Small input variation (the paper includes source variation in its
    # SPICE runs) barely moves the accuracy; very large variation hurts.
    assert accuracies[0.02] >= accuracies[0.0] - 0.1
    assert accuracies[0.20] <= accuracies[0.0] + 1e-9
