"""Fig. 3 — matching accuracy vs image down-sizing and detection resolution.

* Fig. 3a (E-F3a): accuracy over the 400 test images as the stored image is
  down-sized; it stays near the full-size value down to 16x8 and drops for
  more aggressive reduction.
* Fig. 3b (E-F3b): accuracy versus the detection-unit (WTA) resolution at
  the 16x8, 5-bit operating point; 5 bits (≈4 %) keeps the accuracy close
  to the ideal-comparison value, coarser detection degrades it.
"""

from __future__ import annotations

from repro.analysis.accuracy import downsizing_sweep, resolution_sweep
from repro.analysis.report import format_accuracy_points

#: Down-sizing sweep of Fig. 3a: from 64x48 down to 8x4 pixels.
FIG3A_SHAPES = ((64, 48), (32, 24), (16, 12), (16, 8), (8, 4), (4, 2))
#: Detection-resolution sweep of Fig. 3b.
FIG3B_RESOLUTIONS = (8, 7, 6, 5, 4, 3, 2)


def test_fig3a_downsizing(benchmark, full_dataset, write_result):
    points = benchmark.pedantic(
        lambda: downsizing_sweep(full_dataset, feature_shapes=FIG3A_SHAPES, bits=5),
        rounds=1,
        iterations=1,
    )
    write_result("fig3a_accuracy_vs_downsizing", format_accuracy_points(points))

    accuracies = {point.label.split(",")[0]: point.accuracy for point in points}
    # The paper's operating point (16x8) stays close to the large-image
    # accuracy, while the most aggressive reduction loses accuracy.
    assert accuracies["16x8"] >= accuracies["64x48"] - 0.05
    assert accuracies["4x2"] < accuracies["16x8"] - 0.05
    assert accuracies["64x48"] > 0.9


def test_fig3b_wta_resolution(benchmark, full_dataset, write_result):
    points = benchmark.pedantic(
        lambda: resolution_sweep(
            full_dataset, resolutions=FIG3B_RESOLUTIONS, feature_shape=(16, 8), bits=5
        ),
        rounds=1,
        iterations=1,
    )
    write_result("fig3b_accuracy_vs_wta_resolution", format_accuracy_points(points))

    by_bits = {int(point.parameter): point.accuracy for point in points}
    # 5-bit detection (the paper's choice, ~4 %) stays close to the ideal
    # 8-bit value; 3-bit and below fall off markedly.
    assert by_bits[5] >= by_bits[8] - 0.05
    assert by_bits[3] < by_bits[5] - 0.05
    assert by_bits[2] < by_bits[3]
