"""Fig. 8b — DTCS-DAC non-linearity vs crossbar load conductance (E-F8b).

The input DAC delivers its current through the series combination of its
own conductance G_T and the total row conductance G_TS.  When the
memristors are programmed to high resistances (small G_TS) the transfer
characteristic bends away from the ideal straight line, which is what
ultimately erodes the detection margin on the low-G_TS side of Fig. 9a.
"""

from __future__ import annotations


from repro.analysis.report import format_si, format_table
from repro.devices.dac import DtcsDac

#: Row-load conductances swept (S): from low-resistance memristor rows to
#: high-resistance rows.
LOAD_SWEEP = (40e-3, 20e-3, 10e-3, 5e-3, 2e-3, 1e-3, 0.5e-3)


def _nonlinearity_sweep():
    dac = DtcsDac(bits=5, unit_conductance=12.5e-6, delta_v=30e-3)
    results = []
    for load in LOAD_SWEEP:
        characteristics = dac.characteristics(load)
        results.append(
            (
                load,
                characteristics.full_scale_current,
                characteristics.max_integral_nonlinearity(),
                characteristics.relative_nonlinearity(),
            )
        )
    return results


def test_fig8b_dac_nonlinearity(benchmark, write_result):
    results = benchmark(_nonlinearity_sweep)

    table = format_table(
        ["G_TS", "Full-scale current", "Worst INL (LSB)", "Relative non-linearity"],
        [
            [format_si(load, "S"), format_si(fs, "A"), f"{inl:.2f}", f"{rel * 100:.1f}%"]
            for load, fs, inl, rel in results
        ],
    )
    write_result("fig8b_dac_nonlinearity_vs_load", table)

    inl_values = [inl for _, _, inl, _ in results]
    # Fig. 8b: the non-linearity grows monotonically as G_TS shrinks.
    assert all(b >= a - 1e-9 for a, b in zip(inl_values, inl_values[1:]))
    # With a stiff load the DAC is essentially linear (< 0.2 LSB); with the
    # weakest load the error exceeds one LSB (visible bending in Fig. 8b).
    assert inl_values[0] < 0.2
    assert inl_values[-1] > 1.0
    # The full-scale current also compresses as the load weakens.
    full_scales = [fs for _, fs, _, _ in results]
    assert all(b <= a + 1e-15 for a, b in zip(full_scales, full_scales[1:]))
