"""Table 2 — design parameters (E-T2).

Table 2 of the paper is the design-parameter listing; the reproduction's
single source of truth for those values is
:class:`repro.core.config.DesignParameters`.  This benchmark renders the
table and checks every entry against the published values, and verifies
that the derived device models are mutually consistent (e.g. the DWM
switching time at the threshold current fits inside the 100 MHz cycle).
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table2
from repro.core.config import default_parameters


def test_table2_parameters(benchmark, write_result):
    parameters = default_parameters()
    table = benchmark(parameters.table2)
    write_result("table2_design_parameters", format_table2(table))

    assert table["Template size"] == "16x8, 5-bit"
    assert table["# template"] == "40"
    assert table["Comparator resolution"] == "5-bit"
    assert table["Input data rate"] == "100MHz"
    assert table["Crossbar parasitics"].startswith("1Ohm/um")
    assert table["Memristor material"] == "Ag-aSi"
    assert table["Magnet material"] == "NiFe"
    assert table["Free-layer size"] == "3x22x60nm3"
    assert table["Ms"] == "800 emu/cm3"
    assert table["Ku2V"] == "20KT"
    assert table["Ic"] == "1uA"
    assert table["Tswitch"] == "1.5ns"
    assert table["Resistance range"] == "1kOhm to 32kOhm"


def test_table2_derived_consistency(benchmark):
    parameters = default_parameters()

    def checks():
        magnet = parameters.domain_wall_magnet()
        dwn = parameters.dwn_config()
        memristor = parameters.memristor_model()
        return magnet, dwn, memristor

    magnet, dwn, memristor = benchmark(checks)

    # The DWN threshold exceeds the magnet's intrinsic critical current
    # (design margin) and switching at that drive completes within the
    # evaluation half-period of the 100 MHz clock.
    assert dwn.threshold_current >= magnet.critical_current
    assert magnet.switching_time(2.0 * magnet.critical_current) < dwn.evaluation_time
    # The memristor range spans the advertised 32:1 ratio with 5-bit levels.
    assert memristor.conductance_ratio == pytest.approx(32.0)
    assert memristor.levels == 32
    # The WTA full scale implied by the threshold matches Section 4-A's 32 uA.
    assert parameters.wta_full_scale_current == pytest.approx(32e-6)
