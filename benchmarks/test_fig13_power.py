"""Fig. 13 — power decomposition and variation sensitivity (E-F13a, E-F13b).

* Fig. 13a: total power of the proposed design versus the DWN switching
  threshold, split into its static and dynamic components.  The static
  part (RCM evaluation current across ΔV plus the SAR-DAC path) scales
  with the threshold; the dynamic part (latch/register/tracking switching)
  is threshold-independent and dominates once the threshold is scaled
  down.
* Fig. 13b: ratio of the power-delay product of the MS-CMOS WTA designs to
  that of the proposed design as the transistor threshold mismatch σVT
  grows, at a fixed 4 % (5-bit) detection resolution.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.power import threshold_power_sweep
from repro.analysis.report import format_si, format_table
from repro.analysis.variations import pd_ratio_sweep

#: Fig. 13a sweep: DWN switching threshold (A).
FIG13A_THRESHOLDS = (2.0e-6, 1.5e-6, 1.0e-6, 0.75e-6, 0.5e-6, 0.25e-6)
#: Fig. 13b sweep: σVT of minimum-sized transistors (V).
FIG13B_SIGMA_VT = (5e-3, 10e-3, 15e-3, 20e-3, 25e-3)


def test_fig13a_power_vs_threshold(benchmark, reference_parameters, write_result):
    breakdowns = benchmark(
        lambda: threshold_power_sweep(FIG13A_THRESHOLDS, parameters=reference_parameters)
    )

    table = format_table(
        ["DWN threshold", "Static (RCM)", "Static (SAR DAC)", "Dynamic", "Total"],
        [
            [
                format_si(threshold, "A"),
                format_si(b.static_rcm, "W"),
                format_si(b.static_sar_dac, "W"),
                format_si(b.dynamic, "W"),
                format_si(b.total, "W"),
            ]
            for threshold, b in zip(FIG13A_THRESHOLDS, breakdowns)
        ],
    )
    write_result("fig13a_power_vs_dwn_threshold", table)

    statics = np.array([b.static_total for b in breakdowns])
    dynamics = np.array([b.dynamic for b in breakdowns])
    totals = np.array([b.total for b in breakdowns])
    # Static power falls proportionally with the threshold; dynamic stays flat.
    assert np.all(np.diff(statics) < 0)
    assert np.allclose(dynamics, dynamics[0])
    # Dynamic dominates at the smallest thresholds (the flattening of Fig. 13a).
    assert dynamics[-1] > statics[-1]
    # Total power at the nominal 1 uA threshold is in the ~65 uW range of Table 1.
    nominal = totals[FIG13A_THRESHOLDS.index(1.0e-6)]
    assert 40e-6 < nominal < 90e-6


def test_fig13b_pd_ratio_vs_variation(benchmark, reference_parameters, write_result):
    points = benchmark(
        lambda: pd_ratio_sweep(
            FIG13B_SIGMA_VT, parameters=reference_parameters, resolution_bits=5
        )
    )

    table = format_table(
        ["sigma_VT", "PD ratio [17]/proposed", "PD ratio [18]/proposed"],
        [
            [format_si(point.sigma_vt, "V"), f"{point.ratio_bt:.0f}x", f"{point.ratio_async:.0f}x"]
            for point in points
        ],
    )
    write_result("fig13b_pd_ratio_vs_sigma_vt", table)

    ratios_bt = [point.ratio_bt for point in points]
    ratios_async = [point.ratio_async for point in points]
    # Fig. 13b: the penalty of the MS-CMOS designs grows steeply with
    # increasing transistor variation while the proposed design is immune.
    assert all(b > a for a, b in zip(ratios_bt, ratios_bt[1:]))
    assert all(b > a for a, b in zip(ratios_async, ratios_async[1:]))
    # Already two orders of magnitude at the near-ideal 5 mV corner.
    assert ratios_bt[0] > 50
    # And it worsens by a large factor across the sweep.
    assert ratios_bt[-1] > 5 * ratios_bt[0]
