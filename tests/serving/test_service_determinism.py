"""Serving determinism and backpressure (mirrors test_batched_equivalence).

Same seed ⇒ identical per-request results no matter how traffic arrives:
submission order, micro-batch window/size, and worker count must not
change any request's answer (discrete fields exactly; analog fields to
solver/BLAS precision).  Saturation must surface as an immediate, clean
:class:`BackpressureError` — never a deadlock — and the service must keep
working after the burst drains.
"""

import threading

import numpy as np
import pytest

from repro.serving import (
    BackpressureError,
    RecognitionService,
    ServiceClosedError,
)
from repro.backends.threaded import ThreadedBackend


def gather(service, codes_batch, seeds, order=None):
    """Submit requests in ``order`` and return results in original order."""
    order = range(len(seeds)) if order is None else order
    futures = {}
    for index in order:
        futures[index] = service.submit(codes_batch[index], seed=int(seeds[index]))
    return [futures[index].result(timeout=30.0) for index in range(len(seeds))]


def assert_request_equal(left, right, rtol=1e-9):
    assert left.winner_column == right.winner_column
    assert left.winner == right.winner
    assert left.dom_code == right.dom_code
    assert left.accepted == right.accepted
    assert left.tie == right.tie
    assert np.array_equal(left.codes, right.codes)
    assert left.events == right.events
    np.testing.assert_allclose(left.column_currents, right.column_currents, rtol=rtol)


@pytest.fixture()
def reference_results(serving_amm, request_codes, request_seeds):
    """Ground truth: the seeded engine on the whole set in one batch."""
    return serving_amm.recognise_batch_seeded(request_codes, request_seeds)


class TestArrivalOrderInvariance:
    def test_reversed_and_shuffled_submission(
        self, serving_amm, request_codes, request_seeds, reference_results
    ):
        orders = [
            list(reversed(range(len(request_seeds)))),
            list(np.random.default_rng(13).permutation(len(request_seeds))),
        ]
        for order in orders:
            with RecognitionService(
                serving_amm, max_batch_size=8, max_wait=5e-3
            ) as service:
                results = gather(service, request_codes, request_seeds, order)
            for index, result in enumerate(results):
                assert_request_equal(result, reference_results[index])

    def test_interleaved_concurrent_submitters(
        self, serving_amm, request_codes, request_seeds, reference_results
    ):
        with RecognitionService(serving_amm, max_batch_size=6, max_wait=2e-3) as service:
            results = [None] * len(request_seeds)

            def submit_stripe(start):
                for index in range(start, len(request_seeds), 3):
                    results[index] = service.recognise(
                        request_codes[index], seed=int(request_seeds[index]), timeout=30.0
                    )

            threads = [
                threading.Thread(target=submit_stripe, args=(start,))
                for start in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for index, result in enumerate(results):
            assert_request_equal(result, reference_results[index])


class TestBatchBoundaryInvariance:
    @pytest.mark.parametrize("max_batch_size,max_wait", [(1, 0.0), (3, 0.0), (64, 5e-3)])
    def test_results_unchanged(
        self,
        serving_amm,
        request_codes,
        request_seeds,
        reference_results,
        max_batch_size,
        max_wait,
    ):
        with RecognitionService(
            serving_amm, max_batch_size=max_batch_size, max_wait=max_wait
        ) as service:
            results = gather(service, request_codes, request_seeds)
        for index, result in enumerate(results):
            assert_request_equal(result, reference_results[index])


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_results_unchanged(
        self, serving_amm, request_codes, request_seeds, reference_results, workers
    ):
        with RecognitionService(
            serving_amm, max_batch_size=64, max_wait=10e-3, workers=workers
        ) as service:
            results = gather(service, request_codes, request_seeds)
        for index, result in enumerate(results):
            assert_request_equal(result, reference_results[index])

    def test_sharded_dispatch_matches_reference(
        self, serving_amm, request_codes, request_seeds, reference_results
    ):
        """Force a batch large enough to split across several workers."""
        pool_service = RecognitionService(
            serving_amm, max_batch_size=64, max_wait=20e-3, workers=3
        )
        pool_service.pool.backend.min_shard_size = 4
        with pool_service as service:
            results = gather(service, request_codes, request_seeds)
        for index, result in enumerate(results):
            assert_request_equal(result, reference_results[index])


class TestSaturation:
    def test_queue_full_raises_cleanly_and_recovers(
        self, serving_amm, request_codes, monkeypatch
    ):
        gate = threading.Event()
        original = ThreadedBackend.recall_batch_seeded

        def gated_recall(self, codes_batch, request_seeds):
            gate.wait(timeout=20.0)
            return original(self, codes_batch, request_seeds)

        monkeypatch.setattr(ThreadedBackend, "recall_batch_seeded", gated_recall)
        service = RecognitionService(
            serving_amm, max_batch_size=2, max_wait=0.0, max_queue_depth=3, workers=1
        )
        try:
            futures = []
            saw_backpressure = False
            # The gated worker plus bounded dispatch slots cap what leaves
            # the queue, so a bounded burst must hit BackpressureError.
            for _ in range(64):
                try:
                    futures.append(service.submit(request_codes[0], seed=1))
                except BackpressureError:
                    saw_backpressure = True
                    break
            assert saw_backpressure, "saturated queue never rejected"
            assert service.metrics.rejected >= 1
            gate.set()
            for future in futures:
                result = future.result(timeout=20.0)
                assert result.winner_column == futures[0].result(20.0).winner_column
            # After draining, the service accepts and serves new requests.
            fresh = service.recognise(request_codes[1], seed=2, timeout=20.0)
            assert 0 <= fresh.winner_column < serving_amm.crossbar.columns
        finally:
            gate.set()
            service.close()

    def test_submit_many_is_all_or_nothing(self, serving_amm, request_codes, monkeypatch):
        """A multi-row submission that cannot fit entirely is fully rejected."""
        gate = threading.Event()
        original = ThreadedBackend.recall_batch_seeded

        def gated_recall(self, codes_batch, request_seeds):
            gate.wait(timeout=20.0)
            return original(self, codes_batch, request_seeds)

        monkeypatch.setattr(ThreadedBackend, "recall_batch_seeded", gated_recall)
        service = RecognitionService(
            serving_amm, max_batch_size=2, max_wait=0.0, max_queue_depth=4, workers=1
        )
        try:
            # Saturate the dispatch pipeline (gated worker + bounded
            # slots) until requests start staying in the queue.
            admitted = []
            for attempt in range(32):
                if service.queue_depth >= 1:
                    break
                admitted.append(service.submit(request_codes[attempt % 8], seed=attempt))
            assert service.queue_depth >= 1
            before = service.metrics.submitted
            # 4 rows fit the queue bound structurally, but not on top of
            # what is already pending: the whole batch must be rejected.
            with pytest.raises(BackpressureError):
                service.submit_many(request_codes[:4], seeds=[1, 2, 3, 4])
            assert service.metrics.submitted == before
            assert service.metrics.rejected == 4
            # More rows than the queue can ever hold is a permanent
            # error, not a retry-later rejection.
            with pytest.raises(ValueError, match="stream.*the request"):
                service.submit_many(request_codes[:5], seeds=range(5))
            gate.set()
            for future in admitted:
                future.result(timeout=20.0)
        finally:
            gate.set()
            service.close()

    def test_closed_service_rejects(self, serving_amm, request_codes):
        service = RecognitionService(serving_amm, max_batch_size=4)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(request_codes[0])

    def test_close_timeout_fails_stranded_futures(
        self, serving_amm, request_codes, monkeypatch
    ):
        """A timed-out drain must resolve queued futures with an error,
        never leave them hanging."""
        gate = threading.Event()
        original = ThreadedBackend.recall_batch_seeded

        def gated_recall(self, codes_batch, request_seeds):
            gate.wait(timeout=20.0)
            return original(self, codes_batch, request_seeds)

        monkeypatch.setattr(ThreadedBackend, "recall_batch_seeded", gated_recall)
        service = RecognitionService(
            serving_amm, max_batch_size=1, max_wait=0.0, max_queue_depth=16, workers=1
        )
        futures = [service.submit(request_codes[0], seed=index) for index in range(10)]
        closer = threading.Thread(target=service.close, kwargs={"timeout": 0.2})
        closer.start()
        # Let close() hit its timeout while the worker is still gated,
        # then release the in-flight batches.
        closer.join(timeout=2.0)
        gate.set()
        closer.join(timeout=20.0)
        assert not closer.is_alive()
        outcomes = {"served": 0, "failed": 0}
        for future in futures:
            try:
                future.result(timeout=20.0)
                outcomes["served"] += 1
            except ServiceClosedError:
                outcomes["failed"] += 1
        assert outcomes["served"] + outcomes["failed"] == 10
        assert outcomes["failed"] >= 1, "timed-out drain should abandon the tail"

    def test_invalid_codes_rejected_synchronously(self, serving_amm):
        with RecognitionService(serving_amm, max_batch_size=4) as service:
            with pytest.raises(ValueError):
                service.submit(np.zeros(7, dtype=int))
            with pytest.raises(ValueError):
                service.submit(np.full(32, 99, dtype=int))
            with pytest.raises(ValueError):
                service.submit(np.zeros(32, dtype=int), seed=-5)


def test_stochastic_module_refused(request_codes):
    from tests.serving.conftest import build_amm

    amm = build_amm(stochastic_dwn=True, include_parasitics=False)
    with pytest.raises(ValueError, match="deterministic"):
        RecognitionService(amm)


def test_unreset_neurons_refused(request_codes):
    """reset_neurons=False is equally draw-order dependent: fail at
    construction, not on the first request."""
    from tests.serving.conftest import build_amm

    amm = build_amm(include_parasitics=False)
    amm.wta.reset_neurons = False
    with pytest.raises(ValueError, match="deterministic"):
        RecognitionService(amm)
