"""Per-client quota tests: token bucket, in-flight cap, HTTP 429 mapping.

Quota denials are a *per-client* verdict, distinct from shared-queue
backpressure: they map to HTTP 429 with ``"reason": "quota"`` and a
``Retry-After`` hint, count under ``requests.quota_rejected`` (never
``requests.rejected``), and show up in the per-client ``/stats``
section, so a noisy tenant is visible without throttling anyone else.
"""

from __future__ import annotations

import json

import pytest

from repro.serving import (
    BackpressureError,
    ClientQuotas,
    QuotaConfig,
    QuotaExceededError,
    RecognitionClient,
    RecognitionService,
    ServerError,
    start_server,
    stop_server,
)
from tests.serving.test_regressions import wait_for


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def make(self, rate=10.0, burst=5, max_inflight=None):
        clock = FakeClock()
        quotas = ClientQuotas(
            QuotaConfig(rate=rate, burst=burst, max_inflight=max_inflight),
            clock=clock,
        )
        return quotas, clock

    def test_burst_then_deny_with_retry_hint(self):
        quotas, clock = self.make()
        quotas.admit("a", 5)
        with pytest.raises(QuotaExceededError) as excinfo:
            quotas.admit("a", 1)
        assert excinfo.value.retry_after == pytest.approx(0.1)

    def test_refill_at_rate(self):
        quotas, clock = self.make()
        quotas.admit("a", 5)
        clock.advance(0.25)  # 2.5 tokens back at 10/s
        quotas.admit("a", 2)
        with pytest.raises(QuotaExceededError):
            quotas.admit("a", 1)
        clock.advance(10.0)  # refill caps at burst
        quotas.admit("a", 5)
        with pytest.raises(QuotaExceededError):
            quotas.admit("a", 1)

    def test_clients_are_independent(self):
        quotas, _ = self.make()
        quotas.admit("a", 5)
        quotas.admit("b", 5)  # b's bucket is untouched by a's spend

    def test_oversized_burst_is_permanent_error(self):
        quotas, _ = self.make()
        with pytest.raises(ValueError, match="stream"):
            quotas.admit("a", 6)

    def test_inflight_cap_and_release(self):
        quotas, clock = self.make(rate=1000.0, burst=1000, max_inflight=2)
        quotas.admit("a", 2)
        with pytest.raises(QuotaExceededError) as excinfo:
            quotas.admit("a", 1)
        assert excinfo.value.retry_after is None
        quotas.release("a", 1)
        quotas.admit("a", 1)
        assert quotas.inflight("a") == 2

    def test_cancel_admission_restores_everything(self):
        quotas, _ = self.make(max_inflight=5)
        quotas.admit("a", 4)
        quotas.cancel_admission("a", 4)
        assert quotas.inflight("a") == 0
        quotas.admit("a", 5)  # tokens are back too

    def test_refund_tokens_leaves_inflight(self):
        quotas, _ = self.make(max_inflight=5)
        quotas.admit("a", 3)
        quotas.refund_tokens("a", 3)
        assert quotas.inflight("a") == 3
        quotas.admit("a", 2)  # 5 - 3 + 3 = 5 tokens were available

    def test_anonymous_bucket_is_shared(self):
        quotas, _ = self.make()
        quotas.admit(None, 5)
        with pytest.raises(QuotaExceededError):
            quotas.admit(None, 1)

    def test_bucket_table_is_pruned(self, monkeypatch):
        """Spraying unique client ids must not grow the table forever:
        idle, fully-refilled buckets (indistinguishable from fresh ones)
        are swept once the table exceeds the prune threshold."""
        import repro.serving.quotas as quotas_module

        monkeypatch.setattr(quotas_module, "PRUNE_TABLE_SIZE", 4)
        quotas, clock = self.make(rate=10.0, burst=5)
        for index in range(10):
            quotas.admit(f"spray-{index}", 1)
            quotas.release(f"spray-{index}", 1)
        clock.advance(10.0)  # every bucket refills to burst
        quotas.admit("fresh", 1)
        assert len(quotas._buckets) <= 5  # swept table + the new client
        # A bucket with rows in flight is never swept.
        quotas.admit("busy", 2)
        clock.advance(10.0)
        for index in range(10):
            quotas.admit(f"again-{index}", 1)
            quotas.release(f"again-{index}", 1)
        clock.advance(10.0)
        quotas.admit("fresh-2", 1)
        assert quotas.inflight("busy") == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            QuotaConfig(rate=0.0, burst=4)
        with pytest.raises(ValueError):
            QuotaConfig(rate=1.0, burst=0)
        with pytest.raises(ValueError):
            QuotaConfig(rate=1.0, burst=4, max_inflight=0)


class TestServiceQuota:
    def test_inflight_cap_denies_and_recovers(
        self, serving_amm, request_codes, recall_gate
    ):
        gate, _ = recall_gate
        clock_quotas = ClientQuotas(
            QuotaConfig(rate=1e9, burst=1000, max_inflight=2)
        )
        service = RecognitionService(
            serving_amm,
            max_batch_size=1,
            max_wait=0.0,
            workers=1,
            quota=clock_quotas,
        )
        try:
            first = service.submit(request_codes[0], seed=1, client_id="a")
            second = service.submit(request_codes[1], seed=2, client_id="a")
            with pytest.raises(QuotaExceededError):
                service.submit(request_codes[2], seed=3, client_id="a")
            # Another tenant is unaffected.
            other = service.submit(request_codes[3], seed=4, client_id="b")
            assert service.metrics.quota_rejected == 1
            gate.set()
            for future in (first, second, other):
                assert future.result(timeout=20.0) is not None
            # The resolved futures released their in-flight slots.
            assert wait_for(lambda: clock_quotas.inflight("a") == 0)
            third = service.submit(request_codes[2], seed=3, client_id="a")
            assert third.result(timeout=20.0) is not None
            stats = service.stats()
            assert stats["requests"]["quota_rejected"] == 1
            assert stats["clients"]["a"]["quota_rejected"] == 1
            assert stats["clients"]["a"]["submitted"] == 3
            assert stats["clients"]["b"]["completed"] == 1
        finally:
            gate.set()
            service.close()

    def test_token_exhaustion_is_quota_not_backpressure(
        self, serving_amm, request_codes
    ):
        service = RecognitionService(
            serving_amm,
            max_batch_size=8,
            max_wait=0.0,
            quota=QuotaConfig(rate=1e-3, burst=2),
        )
        try:
            service.recognise_many(
                request_codes[:2], seeds=[1, 2], client_id="a", timeout=20.0
            )
            with pytest.raises(QuotaExceededError) as excinfo:
                service.submit(request_codes[2], seed=3, client_id="a")
            assert excinfo.value.retry_after is not None
            assert service.metrics.quota_rejected == 1
            assert service.metrics.rejected == 0
        finally:
            service.close()

    def test_backpressure_rejection_refunds_quota(
        self, serving_amm, request_codes, recall_gate
    ):
        """A quota-admitted batch the shared queue rejects must give the
        client its tokens and in-flight slots back."""
        gate, _ = recall_gate
        quotas = ClientQuotas(QuotaConfig(rate=1e9, burst=100, max_inflight=100))
        service = RecognitionService(
            serving_amm,
            max_batch_size=1,
            max_wait=0.0,
            max_queue_depth=2,
            workers=1,
            quota=quotas,
        )
        try:
            # Fill the gated pipeline and the bounded queue until the
            # service starts pushing back.
            admitted = []
            saw_backpressure = False
            for index in range(32):
                try:
                    admitted.append(
                        service.submit(
                            request_codes[index % 8], seed=index, client_id="a"
                        )
                    )
                except BackpressureError:
                    saw_backpressure = True
                    break
            assert saw_backpressure, "bounded queue never pushed back"
            inflight_before = quotas.inflight("a")
            assert inflight_before == len(admitted)
            with pytest.raises(BackpressureError):
                service.submit_many(
                    request_codes[6:8], seeds=[108, 109], client_id="a"
                )
            # The rejected rows (single and batch) charged nothing.
            assert quotas.inflight("a") == inflight_before
            gate.set()
            for future in admitted:
                future.result(timeout=20.0)
            assert wait_for(lambda: quotas.inflight("a") == 0)
        finally:
            gate.set()
            service.close()


class TestHttpQuota:
    @pytest.fixture()
    def quota_server(self, serving_amm):
        service = RecognitionService(
            serving_amm,
            max_batch_size=8,
            max_wait=1e-3,
            quota=QuotaConfig(rate=1e-3, burst=2),
        )
        server = start_server(service, port=0)
        yield server
        stop_server(server)

    def test_quota_429_reason_and_retry_after(self, quota_server, request_codes):
        import http.client

        with RecognitionClient(
            "127.0.0.1", quota_server.port, client_id="tenant-1"
        ) as client:
            client.recognise(request_codes[0], seed=1)
            client.recognise(request_codes[1], seed=2)
            connection = http.client.HTTPConnection(
                "127.0.0.1", quota_server.port, timeout=10.0
            )
            try:
                connection.request(
                    "POST",
                    "/recognise",
                    body=json.dumps(
                        {"codes": request_codes[2].tolist(), "client_id": "tenant-1"}
                    ).encode(),
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                payload = json.loads(response.read())
                assert response.status == 429
                assert payload["reason"] == "quota"
                assert int(response.getheader("Retry-After")) >= 1
            finally:
                connection.close()
            stats = client.stats()
            assert stats["requests"]["quota_rejected"] == 1
            assert stats["requests"]["rejected"] == 0
            assert stats["clients"]["tenant-1"]["quota_rejected"] == 1

    def test_header_client_id_is_used(self, quota_server, request_codes):
        with RecognitionClient(
            "127.0.0.1", quota_server.port, client_id="header-tenant"
        ) as client:
            client.recognise(request_codes[0], seed=1)
            stats = client.stats()
        assert stats["clients"]["header-tenant"]["submitted"] == 1

    def test_null_body_client_id_falls_back_to_header(
        self, quota_server, request_codes
    ):
        """An explicit JSON null must not let a tenant shed its gateway's
        X-Client-Id and slip into the anonymous bucket."""
        import http.client

        connection = http.client.HTTPConnection(
            "127.0.0.1", quota_server.port, timeout=10.0
        )
        try:
            connection.request(
                "POST",
                "/recognise",
                body=json.dumps(
                    {"codes": request_codes[0].tolist(), "client_id": None}
                ).encode(),
                headers={
                    "Content-Type": "application/json",
                    "X-Client-Id": "gateway-tenant",
                },
            )
            response = connection.getresponse()
            assert response.status == 200
            response.read()
        finally:
            connection.close()
        with RecognitionClient("127.0.0.1", quota_server.port) as client:
            stats = client.stats()
        assert stats["clients"]["gateway-tenant"]["submitted"] == 1

    def test_body_client_id_overrides_header(self, quota_server, request_codes):
        with RecognitionClient(
            "127.0.0.1", quota_server.port, client_id="header-tenant"
        ) as client:
            client.recognise(request_codes[0], seed=1, client_id="body-tenant")
            stats = client.stats()
        assert stats["clients"]["body-tenant"]["submitted"] == 1

    def test_other_tenant_unaffected(self, quota_server, request_codes):
        with RecognitionClient(
            "127.0.0.1", quota_server.port, client_id="greedy"
        ) as client:
            client.recognise(request_codes[0], seed=1)
            client.recognise(request_codes[1], seed=2)
            with pytest.raises(ServerError) as excinfo:
                client.recognise(request_codes[2], seed=3)
            assert excinfo.value.status == 429
            assert excinfo.value.reason == "quota"
        with RecognitionClient(
            "127.0.0.1", quota_server.port, client_id="quiet"
        ) as client:
            assert "winner" in client.recognise(request_codes[3], seed=4)


class TestRetryAfterContract:
    """The ``Retry-After`` hint must be honest: a non-negative integer
    number of seconds after which the same request really is admitted."""

    def test_header_is_a_nonnegative_integer(self, serving_amm, request_codes):
        import http.client

        service = RecognitionService(
            serving_amm,
            max_batch_size=8,
            max_wait=1e-3,
            quota=QuotaConfig(rate=0.5, burst=1),
        )
        server = start_server(service, port=0)
        try:
            with RecognitionClient(
                "127.0.0.1", server.port, client_id="hinted"
            ) as client:
                client.recognise(request_codes[0], seed=1)  # spend the burst
            connection = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=10.0
            )
            try:
                connection.request(
                    "POST",
                    "/recognise",
                    body=json.dumps(
                        {"codes": request_codes[1].tolist(), "client_id": "hinted"}
                    ).encode(),
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                response.read()
                assert response.status == 429
                header = response.getheader("Retry-After")
                assert header is not None
                # RFC 9110: delay-seconds is a non-negative decimal
                # integer — no floats, no negatives.
                assert header == str(int(header))
                assert int(header) >= 0
                # The hint must cover the actual refill time (1 token at
                # 0.5/s = 2 s), rounded up, never down.
                assert int(header) >= 2
            finally:
                connection.close()
        finally:
            stop_server(server)

    def test_waiting_retry_after_actually_admits(self, serving_amm, request_codes):
        """Advance an injected clock by exactly the hinted (integer)
        seconds: the retried request is admitted — the hint never
        under-promises."""
        import math

        clock = FakeClock()
        quotas = ClientQuotas(QuotaConfig(rate=3.0, burst=2), clock=clock)
        service = RecognitionService(
            serving_amm, max_batch_size=8, max_wait=1e-3, quota=quotas
        )
        try:
            service.recognise(request_codes[0], seed=1, client_id="patient")
            service.recognise(request_codes[1], seed=2, client_id="patient")
            with pytest.raises(QuotaExceededError) as excinfo:
                service.submit(request_codes[2], seed=3, client_id="patient")
            retry_after = excinfo.value.retry_after
            assert retry_after is not None and retry_after >= 0
            hinted_header = max(1, int(math.ceil(retry_after)))  # the 429 header
            # One tick short of the hint may still be denied...
            clock.advance(max(0.0, retry_after - 0.05))
            with pytest.raises(QuotaExceededError):
                service.submit(request_codes[2], seed=3, client_id="patient")
            # ...but the full hinted wait always admits.
            clock.advance((hinted_header - retry_after) + 0.05)
            result = service.recognise(
                request_codes[2], seed=3, client_id="patient", timeout=20.0
            )
            assert result.winner_column >= 0
        finally:
            service.close()

    def test_inflight_denial_hints_one_second_and_clears(
        self, serving_amm, request_codes, recall_gate
    ):
        """An inflight-cap denial has no refill time (retry_after None);
        the HTTP layer still emits an integer hint of 1, and once the
        in-flight rows resolve the retry is admitted."""
        from repro.serving.server import _retry_after_header

        gate, _ = recall_gate
        clock = FakeClock()
        quotas = ClientQuotas(
            QuotaConfig(rate=1e9, burst=64, max_inflight=2), clock=clock
        )
        service = RecognitionService(
            serving_amm, max_batch_size=1, max_wait=0.0, workers=1, quota=quotas
        )
        try:
            futures = [
                service.submit(request_codes[index], seed=index, client_id="capped")
                for index in range(2)
            ]
            with pytest.raises(QuotaExceededError) as excinfo:
                service.submit(request_codes[2], seed=9, client_id="capped")
            assert excinfo.value.retry_after is None
            ((name, value),) = _retry_after_header(excinfo.value)
            assert name == "Retry-After"
            assert value == str(int(value)) and int(value) >= 0
            gate.set()
            for future in futures:
                future.result(timeout=20.0)
            assert wait_for(lambda: quotas.inflight("capped") == 0)
            result = service.recognise(
                request_codes[2], seed=9, client_id="capped", timeout=20.0
            )
            assert result.winner_column >= 0
        finally:
            gate.set()
            service.close()
