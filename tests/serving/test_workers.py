"""Worker-pool tests: engine ownership, sharding, error propagation."""

import concurrent.futures

import numpy as np
import pytest

from repro.serving.metrics import ServiceMetrics
from repro.serving.workers import PendingRequest, RecallWorker, ShardedWorkerPool


def make_pending(codes, seed):
    return PendingRequest(
        codes=np.asarray(codes, dtype=np.int64),
        seed=seed,
        future=concurrent.futures.Future(),
    )


class TestRecallWorker:
    def test_engine_prefactorised_at_startup(self, serving_amm):
        worker = RecallWorker(serving_amm, name="w")
        assert worker.engine.prepared
        assert worker.engine is not serving_amm.solver.batch_engine

    def test_recall_matches_module_engine(self, serving_amm, request_codes, request_seeds):
        worker = RecallWorker(serving_amm)
        via_worker = worker.recall(request_codes, request_seeds)
        reference = serving_amm.recognise_batch_seeded(request_codes, request_seeds)
        assert np.array_equal(via_worker.winner_column, reference.winner_column)
        assert np.array_equal(via_worker.dom_code, reference.dom_code)
        np.testing.assert_allclose(
            via_worker.column_currents, reference.column_currents, rtol=0
        )
        assert worker.batches_processed == 1
        assert worker.requests_processed == len(request_seeds)

    def test_legacy_per_sample_path(self, request_codes):
        from tests.serving.conftest import build_amm

        amm = build_amm(include_parasitics=True)
        worker = RecallWorker(amm)
        results = worker.recall_per_sample(request_codes[:3])
        twin = build_amm(include_parasitics=True)
        for codes, result in zip(request_codes[:3], results):
            expected = twin.recognise(codes)
            assert result.winner_column == expected.winner_column
            assert result.dom_code == expected.dom_code


class TestShardedWorkerPool:
    def test_dispatch_resolves_every_future(self, serving_amm, request_codes, request_seeds):
        pool = ShardedWorkerPool(serving_amm, workers=2)
        try:
            batch = [
                make_pending(codes, int(seed))
                for codes, seed in zip(request_codes, request_seeds)
            ]
            pool.dispatch(batch)
            reference = serving_amm.recognise_batch_seeded(request_codes, request_seeds)
            for index, pending in enumerate(batch):
                result = pending.future.result(timeout=20.0)
                assert result.winner_column == reference[index].winner_column
                assert result.dom_code == reference[index].dom_code
        finally:
            pool.close()

    def test_sharding_splits_large_batches(self, serving_amm, request_codes, request_seeds):
        metrics = ServiceMetrics()
        pool = ShardedWorkerPool(
            serving_amm, workers=3, metrics=metrics, min_shard_size=4
        )
        try:
            batch = [
                make_pending(codes, int(seed))
                for codes, seed in zip(request_codes, request_seeds)
            ]
            pool.dispatch(batch)
            for pending in batch:
                pending.future.result(timeout=20.0)
            # 24 requests / min shard 4 capped at 3 workers -> 3 shards.
            assert sum(worker.batches_processed for worker in pool.workers) == 3
            assert sum(worker.requests_processed for worker in pool.workers) == 24
        finally:
            pool.close()

    def test_small_batches_stay_whole(self, serving_amm, request_codes):
        pool = ShardedWorkerPool(serving_amm, workers=3, min_shard_size=16)
        try:
            batch = [make_pending(codes, 1) for codes in request_codes[:6]]
            pool.dispatch(batch)
            for pending in batch:
                pending.future.result(timeout=20.0)
            assert sum(worker.batches_processed for worker in pool.workers) == 1
        finally:
            pool.close()

    def test_worker_error_propagates_to_futures(self, serving_amm, request_codes):
        pool = ShardedWorkerPool(serving_amm, workers=1)
        try:
            bad = [make_pending(np.full(32, 99), 1)]  # out-of-range codes
            pool.dispatch(bad)
            with pytest.raises(ValueError):
                bad[0].future.result(timeout=20.0)
            assert pool.metrics.failed == 1
            # The worker thread survives the error and serves the next batch.
            good = [make_pending(request_codes[0], 1)]
            pool.dispatch(good)
            good[0].future.result(timeout=20.0)
        finally:
            pool.close()

    def test_close_is_idempotent_and_rejects_dispatch(self, serving_amm, request_codes):
        pool = ShardedWorkerPool(serving_amm, workers=2)
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError):
            pool.dispatch([make_pending(request_codes[0], 1)])

    def test_cancelled_future_does_not_kill_worker(self, serving_amm, request_codes):
        pool = ShardedWorkerPool(serving_amm, workers=1)
        try:
            cancelled = make_pending(request_codes[0], 1)
            assert cancelled.future.cancel()
            survivor = make_pending(request_codes[1], 2)
            pool.dispatch([cancelled, survivor])
            # The worker must skip the cancelled future, serve the rest,
            # and stay alive for later batches.
            assert survivor.future.result(timeout=20.0) is not None
            later = make_pending(request_codes[2], 3)
            pool.dispatch([later])
            assert later.future.result(timeout=20.0) is not None
        finally:
            pool.close()

    def test_empty_dispatch_is_noop(self, serving_amm):
        pool = ShardedWorkerPool(serving_amm, workers=1)
        try:
            pool.dispatch([])
        finally:
            pool.close()
