"""Dispatch-adapter tests: backend wiring, error propagation, deadlines."""

import concurrent.futures
import time

import numpy as np
import pytest

from repro.backends import SerialBackend, ThreadedBackend
from repro.serving.metrics import ServiceMetrics
from repro.serving.service import DeadlineExceededError
from repro.serving.workers import PendingRequest, ShardedWorkerPool


def make_pending(codes, seed, deadline=None):
    return PendingRequest(
        codes=np.asarray(codes, dtype=np.int64),
        seed=seed,
        future=concurrent.futures.Future(),
        deadline=deadline,
    )


class TestBackendWiring:
    def test_default_backend_is_threads(self, serving_amm):
        pool = ShardedWorkerPool(serving_amm, workers=2)
        try:
            capabilities = pool.backend.capabilities()
            assert capabilities.name == "threads"
            assert capabilities.workers == 2
            assert len(pool) == 2
        finally:
            pool.close()

    def test_backend_name_resolved_through_registry(self, serving_amm):
        pool = ShardedWorkerPool(serving_amm, workers=1, backend="serial")
        try:
            assert pool.backend.capabilities().name == "serial"
        finally:
            pool.close()

    def test_unknown_backend_rejected(self, serving_amm):
        with pytest.raises(ValueError, match="unknown backend"):
            ShardedWorkerPool(serving_amm, backend="not-a-backend")

    def test_shared_backend_instance_left_open(self, serving_amm):
        backend = ThreadedBackend(serving_amm, workers=1).prepare()
        try:
            pool = ShardedWorkerPool(serving_amm, backend=backend)
            pool.close()
            # The pool must not close a backend it does not own.
            result = backend.recall_batch_seeded(
                np.zeros((1, serving_amm.crossbar.rows), dtype=np.int64), [1]
            )
            assert len(result) == 1
        finally:
            backend.close()


class TestDispatch:
    def test_dispatch_resolves_every_future(self, serving_amm, request_codes, request_seeds):
        pool = ShardedWorkerPool(serving_amm, workers=2)
        try:
            batch = [
                make_pending(codes, int(seed))
                for codes, seed in zip(request_codes, request_seeds)
            ]
            pool.dispatch(batch)
            reference = serving_amm.recognise_batch_seeded(request_codes, request_seeds)
            for index, pending in enumerate(batch):
                result = pending.future.result(timeout=20.0)
                assert result.winner_column == reference[index].winner_column
                assert result.dom_code == reference[index].dom_code
        finally:
            pool.close()

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_results_identical_across_backends(
        self, serving_amm, request_codes, request_seeds, backend
    ):
        reference = serving_amm.recognise_batch_seeded(request_codes, request_seeds)
        pool = ShardedWorkerPool(
            serving_amm, workers=2, backend=backend, min_shard_size=4
        )
        try:
            batch = [
                make_pending(codes, int(seed))
                for codes, seed in zip(request_codes, request_seeds)
            ]
            pool.dispatch(batch)
            for index, pending in enumerate(batch):
                result = pending.future.result(timeout=20.0)
                assert result.winner_column == reference[index].winner_column
                assert result.dom_code == reference[index].dom_code
                # Analog outputs to solver precision: the replica's
                # autotuned chunk may take a different BLAS kernel path
                # than the reference engine in the last few ulps.
                np.testing.assert_allclose(
                    result.column_currents,
                    reference[index].column_currents,
                    rtol=1e-12,
                )
        finally:
            pool.close()

    def test_legacy_per_sample_path(self, request_codes):
        from tests.serving.conftest import build_amm

        amm = build_amm(include_parasitics=True)
        pool = ShardedWorkerPool(amm, workers=1, legacy_per_sample=True)
        try:
            batch = [make_pending(codes, 1) for codes in request_codes[:3]]
            pool.dispatch(batch)
            results = [pending.future.result(timeout=20.0) for pending in batch]
        finally:
            pool.close()
        twin = build_amm(include_parasitics=True)
        for codes, result in zip(request_codes[:3], results):
            expected = twin.recognise(codes)
            assert result.winner_column == expected.winner_column
            assert result.dom_code == expected.dom_code

    def test_worker_error_propagates_to_futures(self, serving_amm, request_codes):
        pool = ShardedWorkerPool(serving_amm, workers=1)
        try:
            bad = [make_pending(np.full(32, 99), 1)]  # out-of-range codes
            pool.dispatch(bad)
            with pytest.raises(ValueError):
                bad[0].future.result(timeout=20.0)
            assert pool.metrics.failed == 1
            # The dispatcher thread survives the error and serves the next batch.
            good = [make_pending(request_codes[0], 1)]
            pool.dispatch(good)
            good[0].future.result(timeout=20.0)
        finally:
            pool.close()

    def test_close_is_idempotent_and_rejects_dispatch(self, serving_amm, request_codes):
        pool = ShardedWorkerPool(serving_amm, workers=2)
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError):
            pool.dispatch([make_pending(request_codes[0], 1)])

    def test_cancelled_future_does_not_kill_dispatcher(self, serving_amm, request_codes):
        pool = ShardedWorkerPool(serving_amm, workers=1)
        try:
            cancelled = make_pending(request_codes[0], 1)
            assert cancelled.future.cancel()
            survivor = make_pending(request_codes[1], 2)
            pool.dispatch([cancelled, survivor])
            # The dispatcher must skip the cancelled future, serve the
            # rest, and stay alive for later batches.
            assert survivor.future.result(timeout=20.0) is not None
            later = make_pending(request_codes[2], 3)
            pool.dispatch([later])
            assert later.future.result(timeout=20.0) is not None
        finally:
            pool.close()

    def test_empty_dispatch_is_noop(self, serving_amm):
        pool = ShardedWorkerPool(serving_amm, workers=1)
        try:
            pool.dispatch([])
        finally:
            pool.close()


class TestDeadlines:
    def test_expired_requests_dropped_before_dispatch(
        self, serving_amm, request_codes
    ):
        metrics = ServiceMetrics()
        pool = ShardedWorkerPool(serving_amm, workers=1, metrics=metrics)
        try:
            expired = make_pending(
                request_codes[0], 1, deadline=time.monotonic() - 0.01
            )
            live = make_pending(request_codes[1], 2)
            pool.dispatch([expired, live])
            with pytest.raises(DeadlineExceededError):
                expired.future.result(timeout=20.0)
            assert live.future.result(timeout=20.0) is not None
            assert metrics.expired == 1
            assert metrics.completed == 1
        finally:
            pool.close()

    def test_unexpired_deadline_served_normally(self, serving_amm, request_codes):
        pool = ShardedWorkerPool(serving_amm, workers=1)
        try:
            pending = make_pending(
                request_codes[0], 1, deadline=time.monotonic() + 30.0
            )
            pool.dispatch([pending])
            assert pending.future.result(timeout=20.0) is not None
            assert pool.metrics.expired == 0
        finally:
            pool.close()


class TestSerialBackendEngines:
    def test_backend_engine_is_private_and_prefactorised(self, serving_amm):
        backend = SerialBackend(serving_amm).prepare()
        try:
            assert backend._engine.prepared
            assert backend._engine is not serving_amm.solver.batch_engine
        finally:
            backend.close()
