"""Contract tests for the seeded (serving) recall path of the AMM.

``recognise_batch_seeded`` must make each sample's result a pure function
of ``(module, codes, seed)``: invariant under permutation of the batch,
under re-chunking into different micro-batches, and under which engine
replica solved it — and it must not advance any of the module's
sequential random streams.
"""

import numpy as np
import pytest

from repro.crossbar.batched import BatchedCrossbarEngine

from tests.serving.conftest import build_amm


def assert_samples_equal(left, right, rtol=1e-9):
    """Discrete fields identical; analog fields to solver/BLAS precision."""
    assert left.winner_column == right.winner_column
    assert left.winner == right.winner
    assert left.dom_code == right.dom_code
    assert left.accepted == right.accepted
    assert left.tie == right.tie
    assert np.array_equal(left.codes, right.codes)
    assert left.events == right.events
    np.testing.assert_allclose(left.column_currents, right.column_currents, rtol=rtol)
    np.testing.assert_allclose(left.static_power, right.static_power, rtol=rtol)


class TestPureFunctionOfSeed:
    def test_repeat_recall_is_identical(self, serving_amm, request_codes, request_seeds):
        first = serving_amm.recognise_batch_seeded(request_codes, request_seeds)
        second = serving_amm.recognise_batch_seeded(request_codes, request_seeds)
        for index in range(len(first)):
            assert_samples_equal(first[index], second[index], rtol=0.0)

    def test_permutation_invariance(self, serving_amm, request_codes, request_seeds):
        reference = serving_amm.recognise_batch_seeded(request_codes, request_seeds)
        perm = np.random.default_rng(9).permutation(len(request_seeds))
        permuted = serving_amm.recognise_batch_seeded(
            request_codes[perm], request_seeds[perm]
        )
        for position, original in enumerate(perm):
            assert_samples_equal(permuted[position], reference[int(original)])

    def test_chunking_invariance(self, serving_amm, request_codes, request_seeds):
        reference = serving_amm.recognise_batch_seeded(request_codes, request_seeds)
        for chunk in (1, 5, 24):
            index = 0
            for start in range(0, len(request_seeds), chunk):
                part = serving_amm.recognise_batch_seeded(
                    request_codes[start : start + chunk],
                    request_seeds[start : start + chunk],
                )
                for offset in range(len(part)):
                    assert_samples_equal(part[offset], reference[index])
                    index += 1

    def test_engine_replica_invariance(self, serving_amm, request_codes, request_seeds):
        reference = serving_amm.recognise_batch_seeded(request_codes, request_seeds)
        replica = BatchedCrossbarEngine(
            serving_amm.crossbar,
            delta_v=serving_amm.solver.delta_v,
            termination_resistance=serving_amm.solver.termination_resistance,
        ).prepare(serving_amm.include_parasitics)
        assert replica.prepared
        via_replica = serving_amm.recognise_batch_seeded(
            request_codes, request_seeds, engine=replica
        )
        for index in range(len(reference)):
            assert_samples_equal(reference[index], via_replica[index], rtol=0.0)

    def test_different_seed_changes_noise(self, serving_amm, request_codes):
        one = serving_amm.recognise_batch_seeded(request_codes[:4], [1, 2, 3, 4])
        other = serving_amm.recognise_batch_seeded(request_codes[:4], [5, 6, 7, 8])
        # input_variation noise differs per seed, so the analog currents must.
        assert not np.allclose(one.column_currents, other.column_currents)


class TestNoStateMutation:
    def test_sequential_streams_untouched(self, request_codes, request_seeds):
        busy = build_amm(include_parasitics=True, input_variation=0.05)
        pristine = build_amm(include_parasitics=True, input_variation=0.05)
        busy.recognise_batch_seeded(request_codes, request_seeds)
        busy.recognise_batch_seeded(request_codes[:7], request_seeds[:7])
        after_busy = busy.recognise(request_codes[0])
        after_pristine = pristine.recognise(request_codes[0])
        assert after_busy.winner_column == after_pristine.winner_column
        assert after_busy.dom_code == after_pristine.dom_code
        assert after_busy.tie == after_pristine.tie
        assert after_busy.events == after_pristine.events
        assert np.array_equal(after_busy.codes, after_pristine.codes)
        np.testing.assert_allclose(
            after_busy.column_currents, after_pristine.column_currents, rtol=1e-12
        )

    def test_neuron_bookkeeping_untouched(self, serving_amm, request_codes, request_seeds):
        before = [
            (neuron.state, neuron.switch_count) for neuron in serving_amm.wta.neurons
        ]
        serving_amm.recognise_batch_seeded(request_codes, request_seeds)
        after = [
            (neuron.state, neuron.switch_count) for neuron in serving_amm.wta.neurons
        ]
        assert before == after


class TestValidation:
    def test_seed_count_mismatch_rejected(self, serving_amm, request_codes):
        with pytest.raises(ValueError):
            serving_amm.recognise_batch_seeded(request_codes, [1, 2])

    def test_negative_seed_rejected(self, serving_amm, request_codes):
        with pytest.raises(ValueError):
            serving_amm.recognise_batch_seeded(request_codes[:2], [-1, 0])

    def test_empty_batch_rejected(self, serving_amm):
        with pytest.raises(ValueError):
            serving_amm.recognise_batch_seeded(np.empty((0, 32), dtype=int), [])

    def test_stochastic_neurons_rejected(self, request_codes):
        amm = build_amm(stochastic_dwn=True, include_parasitics=False)
        with pytest.raises(ValueError, match="deterministic"):
            amm.recognise_batch_seeded(request_codes[:2], [1, 2])
