"""Shared fixtures for the serving-subsystem tests.

All fixtures use the reduced 32x6 module geometry (the same scale as the
batched-equivalence tests) so the full serving suite — including booting
real HTTP servers on ephemeral ports — runs in seconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.amm import AssociativeMemoryModule

FEATURES = 32
TEMPLATES = 6
SEED = 3


def build_amm(**kwargs) -> AssociativeMemoryModule:
    """A fresh reduced module; identical for identical keyword arguments."""
    rng = np.random.default_rng(SEED)
    templates = rng.integers(0, 32, size=(FEATURES, TEMPLATES))
    return AssociativeMemoryModule.from_templates(templates, seed=SEED, **kwargs)


@pytest.fixture(scope="session")
def serving_amm() -> AssociativeMemoryModule:
    """Parasitic-path module with input variation: both per-request noise
    substreams (input noise, latch offsets) are exercised."""
    return build_amm(include_parasitics=True, input_variation=0.05)


@pytest.fixture(scope="session")
def request_codes() -> np.ndarray:
    rng = np.random.default_rng(SEED + 1000)
    return rng.integers(0, 32, size=(24, FEATURES))


@pytest.fixture(scope="session")
def request_seeds(request_codes) -> np.ndarray:
    return np.arange(request_codes.shape[0], dtype=np.int64) + 500
