"""Shared fixtures for the serving-subsystem tests.

All fixtures use the reduced 32x6 module geometry (the same scale as the
batched-equivalence tests) so the full serving suite — including booting
real HTTP servers on ephemeral ports — runs in seconds.
"""

from __future__ import annotations

import socket
import threading

import numpy as np
import pytest

from repro.core.amm import AssociativeMemoryModule

FEATURES = 32
TEMPLATES = 6
SEED = 3


def build_amm(**kwargs) -> AssociativeMemoryModule:
    """A fresh reduced module; identical for identical keyword arguments."""
    rng = np.random.default_rng(SEED)
    templates = rng.integers(0, 32, size=(FEATURES, TEMPLATES))
    return AssociativeMemoryModule.from_templates(templates, seed=SEED, **kwargs)


@pytest.fixture(scope="session")
def serving_amm() -> AssociativeMemoryModule:
    """Parasitic-path module with input variation: both per-request noise
    substreams (input noise, latch offsets) are exercised."""
    return build_amm(include_parasitics=True, input_variation=0.05)


@pytest.fixture(scope="session")
def request_codes() -> np.ndarray:
    rng = np.random.default_rng(SEED + 1000)
    return rng.integers(0, 32, size=(24, FEATURES))


@pytest.fixture(scope="session")
def request_seeds(request_codes) -> np.ndarray:
    return np.arange(request_codes.shape[0], dtype=np.int64) + 500


@pytest.fixture()
def free_port() -> int:
    """An OS-assigned TCP port that was free a moment ago.

    The port-collision rule of this suite: servers bind ``port=0`` and
    read the ephemeral port back wherever possible (``start_server``
    supports it; never hard-code a port or retry over a fixed range).
    This fixture covers the remaining case — an API that must be handed
    a concrete port number up front.  The OS hands out ascending
    ephemeral ports, so the just-released port stays free for the
    immediate re-bind in practice; anything able to take ``port=0``
    directly should still prefer it.
    """
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


@pytest.fixture()
def recall_gate(monkeypatch):
    """Gate backend recalls and record the seeds that actually reach the
    engine, in dispatch order.

    Returns ``(gate, recalled)``: nothing is solved until ``gate.set()``,
    after which ``recalled`` accumulates the per-request seeds in the
    order the dispatchers solved them — the instrument behind the
    priority-ordering and cancellation-leak tests.
    """
    from repro.backends.threaded import ThreadedBackend

    gate = threading.Event()
    recalled: list = []
    original = ThreadedBackend.recall_batch_seeded

    def wrapped(self, codes_batch, request_seeds):
        gate.wait(timeout=20.0)
        recalled.extend(int(seed) for seed in request_seeds)
        return original(self, codes_batch, request_seeds)

    monkeypatch.setattr(ThreadedBackend, "recall_batch_seeded", wrapped)
    yield gate, recalled
    gate.set()
