"""Request-deadline tests: ``timeout_ms`` → drop before dispatch → 504.

A request that is still queued when its ``timeout_ms`` budget expires
must be dropped *before* any engine time is spent, resolve with
:class:`~repro.serving.service.DeadlineExceededError` (HTTP 504), and be
counted under ``requests.expired`` in the stats snapshot — while
unexpired traffic is served normally.
"""

from __future__ import annotations

import threading

import pytest

from repro.backends.threaded import ThreadedBackend
from repro.serving import (
    DeadlineExceededError,
    RecognitionClient,
    RecognitionService,
    ServerError,
    start_server,
    stop_server,
)


@pytest.fixture()
def gated_backend(monkeypatch):
    """Gate backend recalls so queued requests can be made to expire."""
    gate = threading.Event()
    original = ThreadedBackend.recall_batch_seeded

    def gated_recall(self, codes_batch, request_seeds):
        gate.wait(timeout=20.0)
        return original(self, codes_batch, request_seeds)

    monkeypatch.setattr(ThreadedBackend, "recall_batch_seeded", gated_recall)
    yield gate
    gate.set()


class TestServiceDeadlines:
    def test_expired_request_fails_with_deadline_error(
        self, serving_amm, request_codes, gated_backend
    ):
        service = RecognitionService(
            serving_amm, max_batch_size=1, max_wait=0.0, workers=1
        )
        try:
            # Occupy the dispatch slots so later requests stay queued.
            blockers = [
                service.submit(request_codes[index], seed=index) for index in range(3)
            ]
            doomed = service.submit(request_codes[3], seed=99, timeout_ms=1.0)
            gated_backend.set()
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=20.0)
            for blocker in blockers:
                blocker.result(timeout=20.0)
            assert service.metrics.expired == 1
            assert service.stats()["requests"]["expired"] == 1
        finally:
            gated_backend.set()
            service.close()

    def test_generous_deadline_served(self, serving_amm, request_codes):
        with RecognitionService(serving_amm, max_batch_size=8, max_wait=0.0) as service:
            result = service.recognise(
                request_codes[0], seed=5, timeout=20.0, timeout_ms=30_000.0
            )
            assert 0 <= result.winner_column < serving_amm.crossbar.columns
            assert service.metrics.expired == 0

    def test_invalid_timeout_rejected(self, serving_amm, request_codes):
        with RecognitionService(serving_amm) as service:
            with pytest.raises(ValueError, match="timeout_ms"):
                service.submit(request_codes[0], timeout_ms=0.0)
            with pytest.raises(ValueError, match="timeout_ms"):
                service.submit(request_codes[0], timeout_ms=-5.0)


class TestHttpDeadlines:
    def test_expired_maps_to_504_and_stats_counter(
        self, serving_amm, request_codes, gated_backend
    ):
        service = RecognitionService(
            serving_amm, max_batch_size=1, max_wait=0.0, workers=1
        )
        server = start_server(service, port=0)
        try:
            with RecognitionClient("127.0.0.1", server.port) as client:
                # Fill the dispatch slots through the gated backend.
                fillers = [
                    threading.Thread(
                        target=lambda i=i: service.submit(request_codes[i], seed=i)
                    )
                    for i in range(3)
                ]
                for thread in fillers:
                    thread.start()
                for thread in fillers:
                    thread.join()
                # Release the gate shortly after the doomed request's
                # 1 ms budget has surely expired; the queue then drains
                # and the drop happens at dispatch time.
                release = threading.Timer(0.2, gated_backend.set)
                release.start()
                try:
                    with pytest.raises(ServerError) as excinfo:
                        client.recognise(request_codes[4], seed=4, timeout_ms=1.0)
                    assert excinfo.value.status == 504
                finally:
                    release.join()
                stats = client.stats()
                assert stats["requests"]["expired"] == 1
        finally:
            gated_backend.set()
            stop_server(server)

    def test_timeout_ms_round_trip_without_pressure(self, serving_amm, request_codes):
        service = RecognitionService(serving_amm, max_batch_size=8, max_wait=0.0)
        server = start_server(service, port=0)
        try:
            with RecognitionClient("127.0.0.1", server.port) as client:
                result = client.recognise(request_codes[0], seed=3, timeout_ms=30_000)
                assert "winner" in result
                batch = client.recognise_many(
                    request_codes[:4], seeds=[1, 2, 3, 4], timeout_ms=30_000
                )
                assert len(batch) == 4
        finally:
            stop_server(server)

    def test_bad_timeout_ms_maps_to_400(self, serving_amm, request_codes):
        service = RecognitionService(serving_amm, max_batch_size=8, max_wait=0.0)
        server = start_server(service, port=0)
        try:
            with RecognitionClient("127.0.0.1", server.port) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.recognise(request_codes[0], timeout_ms=-1.0)
                assert excinfo.value.status == 400
        finally:
            stop_server(server)
