"""Regression pins for the serving-path bug sweep of the hardening PR.

Each test here fails on the pre-PR code:

* ``recognise_many`` leaked in-flight work on timeout — the engine kept
  solving rows for a caller that had already received its 504;
* ``ShardedWorkerPool.dispatch`` raced ``close()`` — a batch enqueued
  between the closed check and the sentinel drain hung its futures
  forever;
* the HTTP handler silently truncated non-integer codes (``1.7`` →
  ``1``) and served a wrong answer instead of a 400;
* the batch-fill histogram counted expired/cancelled requests (the
  collected size) instead of the dispatched live size.  (The companion
  ``percentile`` banker's-rounding pin lives in ``test_metrics.py``.)
"""

from __future__ import annotations

import concurrent.futures
import json
import time

import numpy as np
import pytest

from repro.serving import (
    PendingRequest,
    RecognitionService,
    ServiceClosedError,
    ShardedWorkerPool,
    start_server,
    stop_server,
)


def wait_for(predicate, timeout=10.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestGatherLeak:
    def test_timeout_cancels_still_queued_rows(
        self, serving_amm, request_codes, recall_gate
    ):
        """A timed-out multi-image gather must not leave its rows running."""
        gate, recalled = recall_gate
        service = RecognitionService(
            serving_amm, max_batch_size=1, max_wait=0.0, workers=1
        )
        try:
            # Fill the dispatch pipeline (1 in-flight + 2 bounded slots)
            # so the gather's rows stay queued in the service.
            blockers = [
                service.submit(request_codes[index], seed=100 + index)
                for index in range(3)
            ]
            with pytest.raises(concurrent.futures.TimeoutError):
                service.recognise_many(
                    request_codes[:4], seeds=[1, 2, 3, 4], timeout=0.3
                )
            gate.set()
            for blocker in blockers:
                blocker.result(timeout=20.0)
            # Let the dispatchers drain whatever they are going to drain.
            assert wait_for(lambda: service.queue_depth == 0)
            time.sleep(0.1)
            leaked = set(recalled) & {1, 2, 3, 4}
            assert not leaked, (
                f"engine solved rows {sorted(leaked)} for a caller that "
                "already timed out"
            )
            assert service.metrics.cancelled >= 1
        finally:
            gate.set()
            service.close()

    def test_row_error_abandons_later_rows(self, serving_amm, request_codes):
        """A row failing mid-gather must not strand the rows behind it."""
        service = RecognitionService(serving_amm, max_batch_size=4, max_wait=1e-3)
        try:
            bad = np.vstack([request_codes[:2], np.full((1, 32), 99)])
            with pytest.raises(ValueError):
                service.recognise_many(bad, seeds=[1, 2, 3], timeout=20.0)
        finally:
            service.close()


class TestDispatchCloseRace:
    def test_dispatch_after_close_resolves_futures(self, serving_amm, request_codes):
        """Pre-PR, a batch dispatched after close() hung its futures forever;
        now every future fails with ServiceClosedError (and dispatch raises)."""
        pool = ShardedWorkerPool(serving_amm, workers=1)
        pool.close()
        batch = [
            PendingRequest(
                codes=np.asarray(request_codes[0], dtype=np.int64),
                seed=1,
                future=concurrent.futures.Future(),
            )
        ]
        with pytest.raises(ServiceClosedError):
            pool.dispatch(batch)
        with pytest.raises(ServiceClosedError):
            batch[0].future.result(timeout=1.0)
        assert pool.metrics.failed == 1

    def test_service_survives_pool_closed_underneath(
        self, serving_amm, request_codes
    ):
        """The micro-batcher must survive a directly-closed pool: queued
        futures fail cleanly instead of killing the batcher thread."""
        service = RecognitionService(serving_amm, max_batch_size=4, max_wait=50e-3)
        try:
            service.pool.close()
            future = service.submit(request_codes[0], seed=1)
            with pytest.raises(ServiceClosedError):
                future.result(timeout=20.0)
            assert service._batcher.is_alive()
        finally:
            service.close()


class TestNonIntegralCodes:
    @pytest.fixture()
    def running_server(self, serving_amm):
        service = RecognitionService(serving_amm, max_batch_size=8, max_wait=1e-3)
        server = start_server(service, port=0)
        yield server
        stop_server(server)

    def post(self, port, body: dict):
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10.0)
        try:
            connection.request(
                "POST",
                "/recognise",
                body=json.dumps(body).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            return response.status, json.loads(response.read())
        finally:
            connection.close()

    def test_fractional_codes_rejected_not_truncated(
        self, running_server, request_codes
    ):
        codes = [float(value) for value in request_codes[0]]
        codes[0] = 1.7  # pre-PR: silently truncated to 1, wrong answer served
        status, payload = self.post(running_server.port, {"codes": codes})
        assert status == 400
        assert "integ" in payload["error"]

    def test_fractional_batch_codes_rejected(self, running_server, request_codes):
        rows = request_codes[:2].astype(float).tolist()
        rows[1][3] += 0.5
        status, payload = self.post(running_server.port, {"codes": rows})
        assert status == 400

    def test_boolean_and_string_codes_rejected(self, running_server, request_codes):
        status, _ = self.post(
            running_server.port, {"codes": [True] * request_codes.shape[1]}
        )
        assert status == 400
        status, _ = self.post(
            running_server.port, {"codes": ["3"] * request_codes.shape[1]}
        )
        assert status == 400

    def test_integral_floats_accepted(self, running_server, request_codes):
        """2.0 is an integer a JSON client could not avoid emitting."""
        codes = [float(value) for value in request_codes[0]]
        status, payload = self.post(
            running_server.port, {"codes": codes, "seed": 7}
        )
        assert status == 200
        assert "result" in payload

    def test_fractional_seed_rejected(self, running_server, request_codes):
        status, _ = self.post(
            running_server.port,
            {"codes": request_codes[0].tolist(), "seed": 1.5},
        )
        assert status == 400


class TestBatchFillHistogram:
    def test_fill_counts_dispatched_live_size(
        self, serving_amm, request_codes, recall_gate
    ):
        """Expired rows must not inflate the fill histogram: total batched
        rows must equal completed rows once the queue drains."""
        gate, _ = recall_gate
        service = RecognitionService(
            serving_amm, max_batch_size=8, max_wait=1e-3, workers=1
        )
        try:
            blockers = [
                service.submit(request_codes[index], seed=50 + index)
                for index in range(3)
            ]
            # Wait until the blockers left the service queue (they sit in
            # the gated dispatch pipeline), then queue rows that expire.
            assert wait_for(lambda: service.queue_depth == 0)
            doomed = service.submit_many(
                request_codes[:2], seeds=[1, 2], timeout_ms=1.0
            )
            time.sleep(0.1)  # both deadlines pass while the gate is held
            gate.set()
            for blocker in blockers:
                blocker.result(timeout=20.0)
            for future in doomed:
                with pytest.raises(Exception):
                    future.result(timeout=20.0)
            assert wait_for(lambda: service.metrics.expired == 2)
            stats = service.stats()
            fill = stats["batches"]["fill_histogram"]
            total_batched = sum(int(size) * count for size, count in fill.items())
            assert total_batched == stats["requests"]["completed"] == 3
            assert stats["requests"]["expired"] == 2
        finally:
            gate.set()
            service.close()
