"""Binary-endpoint tests: parity, protocol errors, chaos, abandonment.

The native binary endpoint of the asyncio front end speaks the
``repro.backends.wire`` framing and must honour the full serving
contract: bit-identical results, the same admission/error taxonomy as
JSON (carried in typed ERROR frames), and graceful handling of every
byte-level failure a real client can inflict — torn frames, truncated
writes, version-mismatched peers.  The rule under chaos: the server
answers with a *typed* ERROR frame or drops the connection cleanly; it
never hangs and never wedges the listener for the next client.
"""

from __future__ import annotations

import socket

import numpy as np
import pytest

import repro.serving.aio as aio_module
from repro.backends import wire
from repro.serving import (
    BinaryRecognitionClient,
    QuotaConfig,
    RecognitionService,
    ServerError,
    start_async_server,
    stop_async_server,
)
from tests.backends.chaos import ChaosProxy
from tests.serving.test_regressions import wait_for

def make_service(serving_amm, **overrides):
    settings = dict(max_batch_size=8, max_wait=1e-3, workers=2)
    settings.update(overrides)
    return RecognitionService(serving_amm, **settings)


@pytest.fixture()
def binary_server(serving_amm):
    service = make_service(serving_amm)
    server = start_async_server(service, port=0, binary_port=0)
    yield server
    if not service.closed:
        stop_async_server(server)


class TestParity:
    def test_batch_matches_engine_bit_for_bit(
        self, binary_server, serving_amm, request_codes, request_seeds
    ):
        seeds = [int(seed) for seed in request_seeds[:10]]
        with BinaryRecognitionClient(
            "127.0.0.1", binary_server.binary_port
        ) as client:
            result = client.recognise_batch(request_codes[:10], seeds=seeds)
        reference = serving_amm.recognise_batch_seeded(request_codes[:10], seeds)
        assert result.count == 10 and result.ok == 10 and result.failed == 0
        for index, row in enumerate(reference):
            assert result.winner[index] == row.winner
            assert result.winner_column[index] == row.winner_column
            assert result.dom_code[index] == row.dom_code
            assert bool(result.accepted[index]) == row.accepted
            assert bool(result.tie[index]) == row.tie
            assert result.static_power_w[index] == row.static_power
        assert result.rows()[0]["winner"] == reference[0].winner

    def test_broadcast_seed_and_keepalive(self, binary_server, request_codes):
        with BinaryRecognitionClient(
            "127.0.0.1", binary_server.binary_port
        ) as client:
            client.ping()
            first = client.recognise_batch(request_codes[:3])
            second = client.recognise_batch(request_codes[:3])
            assert first.ok == second.ok == 3
            # Same connection, same seeds: determinism holds per request.
            assert first.winner.tolist() == second.winner.tolist()

    def test_admission_rejection_is_typed_error_frame(
        self, serving_amm, request_codes
    ):
        service = make_service(
            serving_amm, quota=QuotaConfig(rate=1.0, burst=2, max_inflight=64)
        )
        server = start_async_server(service, port=0, binary_port=0)
        try:
            with BinaryRecognitionClient(
                "127.0.0.1", server.binary_port, client_id="greedy"
            ) as client:
                with pytest.raises(ServerError) as excinfo:
                    for _ in range(4):
                        client.recognise_batch(request_codes[:2])
                assert excinfo.value.status == 429
                assert excinfo.value.reason == "quota"
                # The connection survives an admission rejection.
                client.ping()
        finally:
            stop_async_server(server)

    def test_malformed_request_keeps_connection_usable(
        self, binary_server, request_codes
    ):
        with BinaryRecognitionClient(
            "127.0.0.1", binary_server.binary_port
        ) as client:
            wire.send_frame(
                client._sock, wire.RECOGNISE, header={"id": 7}, arrays={}
            )
            kind, _version, header, _arrays = wire.recv_frame(client._sock)
            assert kind == wire.ERROR
            assert header.get("status") == 400
            assert header.get("id") == 7
            # Frame was fully consumed: the next request still works.
            result = client.recognise_batch(request_codes[:2])
            assert result.ok == 2

    def test_per_row_deadline_failures(
        self, serving_amm, request_codes, monkeypatch
    ):
        import time as time_module

        from repro.backends.threaded import ThreadedBackend

        original = ThreadedBackend.recall_batch_seeded

        def slowed(self, codes_batch, request_seeds):
            time_module.sleep(0.2)
            return original(self, codes_batch, request_seeds)

        monkeypatch.setattr(ThreadedBackend, "recall_batch_seeded", slowed)
        # Serialise dispatch so rows behind the head can miss their
        # deadline while still queued.
        service = make_service(serving_amm, max_batch_size=1, workers=1)
        server = start_async_server(service, port=0, binary_port=0)
        try:
            with BinaryRecognitionClient(
                "127.0.0.1", server.binary_port
            ) as client:
                result = client.recognise_batch(
                    request_codes[:6], timeout_ms=50.0
                )
        finally:
            stop_async_server(server)
        assert result.count == 6
        assert result.failed >= 1 and result.ok + result.failed == 6
        failed_index = next(iter(result.errors))
        with pytest.raises(ServerError) as excinfo:
            result.row(failed_index)
        assert excinfo.value.status == 504
        assert excinfo.value.reason == "deadline"


class TestHandshake:
    def test_version_mismatch_gets_typed_error_never_a_hang(self, binary_server):
        with socket.create_connection(
            ("127.0.0.1", binary_server.binary_port), timeout=10.0
        ) as sock:
            wire.send_frame(sock, wire.HELLO, header={"protocol": 99})
            kind, _version, header, _arrays = wire.recv_frame(sock)
            assert kind == wire.ERROR
            assert header["type"] == "ProtocolVersionError"
            assert "99" in header["message"]
            # Then a clean close, not a lingering socket.
            assert sock.recv(1) == b""

    def test_non_hello_first_frame_rejected(self, binary_server):
        with socket.create_connection(
            ("127.0.0.1", binary_server.binary_port), timeout=10.0
        ) as sock:
            wire.send_frame(sock, wire.PING, header={})
            kind, _version, header, _arrays = wire.recv_frame(sock)
            assert kind == wire.ERROR
            assert "HELLO" in header["message"]
            assert sock.recv(1) == b""

    def test_garbage_bytes_get_typed_error(self, binary_server):
        with socket.create_connection(
            ("127.0.0.1", binary_server.binary_port), timeout=10.0
        ) as sock:
            sock.sendall(b"GET / HTTP/1.1\r\nHost: wrong-port\r\n\r\n")
            kind, _version, header, _arrays = wire.recv_frame(sock)
            assert kind == wire.ERROR
            assert header["type"] in ("WireProtocolError", "ProtocolVersionError")
            assert sock.recv(1) == b""


class TestChaos:
    """Byte-level faults through the fault-injection proxy."""

    def assert_server_still_healthy(self, server, request_codes):
        with BinaryRecognitionClient("127.0.0.1", server.binary_port) as client:
            assert client.recognise_batch(request_codes[:2]).ok == 2

    def test_torn_frame_mid_array_drops_connection_cleanly(
        self, binary_server, request_codes
    ):
        with ChaosProxy(("127.0.0.1", binary_server.binary_port)) as proxy:
            host, port = proxy.address
            client = BinaryRecognitionClient(host, port, timeout=10.0)
            try:
                # Cut the client→server pipe in the middle of the next
                # frame's array payload (prefix + a sliver of the body).
                proxy.close_after(wire.PREFIX_SIZE + 40)
                with pytest.raises(
                    (OSError, wire.WireProtocolError, wire.ConnectionClosedError)
                ):
                    client.recognise_batch(request_codes[:8])
            finally:
                client._sock.close()
        self.assert_server_still_healthy(binary_server, request_codes)

    @pytest.mark.parametrize("cut_at", [1, 4, 9, 16])
    def test_close_at_byte_n_never_wedges_the_server(
        self, binary_server, request_codes, cut_at
    ):
        """Whatever byte the connection dies at — mid-magic, mid-prefix,
        mid-header — the server sheds the connection and keeps serving."""
        with ChaosProxy(("127.0.0.1", binary_server.binary_port)) as proxy:
            host, port = proxy.address
            sock = socket.create_connection((host, port), timeout=10.0)
            try:
                proxy.close_after(cut_at)
                with pytest.raises((OSError, wire.ConnectionClosedError)):
                    wire.send_frame(
                        sock, wire.HELLO, header={"protocol": wire.PROTOCOL_VERSION}
                    )
                    wire.recv_frame(sock)
            finally:
                sock.close()
        self.assert_server_still_healthy(binary_server, request_codes)

    def test_version_mismatch_through_proxy_is_typed(
        self, binary_server, request_codes
    ):
        """A delayed, proxied peer speaking the wrong protocol version
        still gets the typed ERROR frame — never a hang."""
        with ChaosProxy(("127.0.0.1", binary_server.binary_port)) as proxy:
            proxy.delay(0.05)
            host, port = proxy.address
            with socket.create_connection((host, port), timeout=10.0) as sock:
                wire.send_frame(sock, wire.HELLO, header={"protocol": 0})
                kind, _version, header, _arrays = wire.recv_frame(sock)
                assert kind == wire.ERROR
                assert header["type"] == "ProtocolVersionError"
        self.assert_server_still_healthy(binary_server, request_codes)


class TestAbandonment:
    def test_abandoned_connection_cancels_queued_rows_and_releases_quota(
        self, serving_amm, request_codes, monkeypatch
    ):
        """A binary client that sends a big batch and vanishes must not
        keep the engine busy: once the next ROWS write fails, the queued
        tail is cancelled and the client's quota slots come home."""
        import time as time_module

        from repro.backends.threaded import ThreadedBackend

        recalled: list = []
        original = ThreadedBackend.recall_batch_seeded

        def slowed(self, codes_batch, request_seeds):
            time_module.sleep(0.15)
            recalled.extend(int(seed) for seed in request_seeds)
            return original(self, codes_batch, request_seeds)

        monkeypatch.setattr(ThreadedBackend, "recall_batch_seeded", slowed)
        # Flush a ROWS frame per resolved row so the dead socket is
        # noticed while most of the batch is still queued.
        monkeypatch.setattr(aio_module, "_ROWS_FLUSH", 1)
        service = RecognitionService(
            serving_amm,
            max_batch_size=1,
            max_wait=0.0,
            workers=1,
            quota=QuotaConfig(rate=1e9, burst=256, max_inflight=256),
        )
        server = start_async_server(service, port=0, binary_port=0)
        codes = np.tile(request_codes, (2, 1))[:24]
        seeds = list(range(2000, 2024))
        try:
            client = BinaryRecognitionClient(
                "127.0.0.1", server.binary_port, client_id="abandoner"
            )
            wire.send_frame(
                client._sock,
                wire.RECOGNISE,
                header={},
                arrays={
                    "codes": np.ascontiguousarray(codes, dtype=np.int64),
                    "seeds": np.ascontiguousarray(seeds, dtype=np.int64),
                },
            )
            # Read one ROWS frame so the request is provably in flight,
            # then vanish without consuming the rest.
            kind, _version, _header, _arrays = wire.recv_frame(client._sock)
            assert kind == wire.ROWS
            client._sock.close()
            assert wait_for(
                lambda: service.metrics.cancelled > 0, timeout=20.0
            ), "no queued rows were cancelled after the disconnect"
            assert wait_for(
                lambda: service.quotas.inflight("abandoner") == 0, timeout=20.0
            ), "abandoned binary connection leaked in-flight quota slots"
            assert set(seeds) - set(recalled), (
                "every row was solved despite the client leaving"
            )
        finally:
            stop_async_server(server)


def test_binary_disabled_when_port_is_none(serving_amm, request_codes):
    service = make_service(serving_amm)
    server = start_async_server(service, port=0, binary_port=None)
    try:
        assert server.binary_port is None
        from repro.serving import RecognitionClient

        with RecognitionClient("127.0.0.1", server.port) as client:
            stats = client.stats()
        assert stats["frontend"]["binary_connections_total"] == 0
    finally:
        stop_async_server(server)
