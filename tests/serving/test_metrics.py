"""Unit tests for the service metrics: counters, histogram, percentiles."""

import json
import math
import threading

import pytest

from repro.serving.metrics import ServiceMetrics, percentile


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_sample(self):
        assert percentile([4.0], 0.0) == 4.0
        assert percentile([4.0], 1.0) == 4.0

    def test_nearest_rank(self):
        samples = list(range(1, 101))
        assert percentile(samples, 0.0) == 1
        assert percentile(samples, 0.5) == 50  # the ceil(0.5 * n)-th sample
        assert percentile(samples, 1.0) == 100
        assert percentile(samples, 0.99) == 99

    def test_p50_consistent_across_odd_and_even_counts(self):
        # Regression: int(round(...)) used banker's rounding, so p50 of an
        # even-count sample picked the *upper* neighbour of the median
        # (round(1.5) == 2) while odd counts picked the middle — the
        # nearest-rank definition always takes the ceil(n/2)-th sample.
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0
        assert percentile([1.0, 2.0, 3.0, 4.0, 5.0], 0.5) == 3.0
        for count in range(1, 30):
            samples = [float(value) for value in range(1, count + 1)]
            assert percentile(samples, 0.5) == math.ceil(count / 2)

    def test_unsorted_input(self):
        assert percentile([5.0, 1.0, 3.0], 1.0) == 5.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestServiceMetrics:
    def test_counters_accumulate(self):
        metrics = ServiceMetrics()
        metrics.record_submitted(3)
        metrics.record_rejected()
        metrics.record_batch(2)
        metrics.record_batch(1)
        metrics.record_completed([0.010, 0.020, 0.030])
        metrics.record_failed()
        snapshot = metrics.snapshot()
        assert snapshot["requests"]["submitted"] == 3
        assert snapshot["requests"]["rejected"] == 1
        assert snapshot["requests"]["completed"] == 3
        assert snapshot["requests"]["failed"] == 1
        assert snapshot["batches"]["dispatched"] == 2
        assert snapshot["batches"]["mean_fill"] == pytest.approx(1.5)
        assert snapshot["batches"]["fill_histogram"] == {"1": 1, "2": 1}

    def test_queue_depth_gauge_and_high_water(self):
        metrics = ServiceMetrics()
        metrics.record_queue_depth(5)
        metrics.record_queue_depth(2)
        assert metrics.queue_depth == 2
        assert metrics.snapshot()["queue_depth"] == {"current": 2, "max": 5}

    def test_latency_percentiles_in_ms(self):
        metrics = ServiceMetrics()
        metrics.record_completed([0.001 * k for k in range(1, 101)])
        latency = metrics.latency_percentiles()
        assert latency["samples"] == 100
        assert latency["p50_ms"] == pytest.approx(50.0)
        assert latency["max_ms"] == pytest.approx(100.0)
        assert latency["p99_ms"] <= latency["max_ms"]

    def test_latency_reservoir_is_bounded(self):
        metrics = ServiceMetrics(max_latency_samples=10)
        metrics.record_completed([1.0] * 50)
        assert metrics.latency_percentiles()["samples"] == 10

    def test_throughput_uses_injected_clock(self):
        now = {"t": 0.0}
        metrics = ServiceMetrics(clock=lambda: now["t"])
        metrics.record_completed([0.001] * 40)
        now["t"] = 2.0
        snapshot = metrics.snapshot()
        assert snapshot["uptime_seconds"] == pytest.approx(2.0)
        assert snapshot["throughput"]["completed_per_second"] == pytest.approx(20.0)

    def test_snapshot_json_serialisable(self):
        metrics = ServiceMetrics()
        metrics.record_submitted()
        metrics.record_batch(1)
        metrics.record_completed([0.005])
        json.dumps(metrics.snapshot())

    def test_thread_safety_of_counters(self):
        metrics = ServiceMetrics()

        def pound():
            for _ in range(1000):
                metrics.record_submitted()
                metrics.record_completed([0.001])

        threads = [threading.Thread(target=pound) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = metrics.snapshot()
        assert snapshot["requests"]["submitted"] == 4000
        assert snapshot["requests"]["completed"] == 4000

    def test_invalid_reservoir_size(self):
        with pytest.raises(ValueError):
            ServiceMetrics(max_latency_samples=0)
