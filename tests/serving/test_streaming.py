"""Streaming-mode tests: chunked NDJSON rows, windowing, partial failure.

``POST /recognise`` with ``"stream": true`` answers with a chunked
``application/x-ndjson`` body: one line per row as its future resolves
(``{"index": ..., "result": ...}`` or a per-row error object), then a
``{"done": true, ...}`` summary.  The service submits rows in bounded
windows, so a request *larger than the whole queue* — a hard 400 on the
buffered path — streams through with flat server-side buffering, and
every streamed result is bit-identical to the buffered/serial path.
"""

from __future__ import annotations

import concurrent.futures
import threading

import numpy as np
import pytest

from repro.serving import (
    DeadlineExceededError,
    RecognitionClient,
    RecognitionService,
    ServerError,
    start_server,
    stop_server,
)


@pytest.fixture()
def running_server(serving_amm):
    service = RecognitionService(serving_amm, max_batch_size=8, max_wait=1e-3, workers=2)
    server = start_server(service, port=0)
    yield server
    if not service.closed:
        stop_server(server)


class TestStreamRoundTrip:
    def test_stream_matches_buffered_bit_identical(
        self, running_server, request_codes, request_seeds
    ):
        with RecognitionClient("127.0.0.1", running_server.port) as client:
            buffered = client.recognise_many(request_codes, seeds=request_seeds)
        with RecognitionClient("127.0.0.1", running_server.port) as client:
            events = list(
                client.recognise_stream(request_codes, seeds=request_seeds)
            )
        summary = events[-1]
        assert summary["done"] is True
        assert summary["count"] == len(request_seeds)
        assert summary["ok"] == len(request_seeds)
        assert summary["failed"] == 0
        rows = [event for event in events if "result" in event]
        assert [row["index"] for row in rows] == list(range(len(request_seeds)))
        for index, row in enumerate(rows):
            assert row["result"] == buffered[index]

    def test_stream_content_type_is_ndjson(self, running_server, request_codes):
        import http.client
        import json as json_module

        connection = http.client.HTTPConnection(
            "127.0.0.1", running_server.port, timeout=10.0
        )
        try:
            body = json_module.dumps(
                {"codes": request_codes[:3].tolist(), "stream": True}
            ).encode()
            connection.request(
                "POST",
                "/recognise",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == "application/x-ndjson"
            # http.client strips the hop-by-hop Transfer-Encoding framing;
            # chunked delivery shows as no Content-Length on the response.
            assert response.getheader("Content-Length") is None
            lines = [line for line in response.read().splitlines() if line]
            assert len(lines) == 4  # 3 rows + summary
        finally:
            connection.close()

    def test_single_vector_stream_rejected(self, running_server, request_codes):
        with RecognitionClient("127.0.0.1", running_server.port) as client:
            with pytest.raises(ServerError) as excinfo:
                list(client.recognise_stream(request_codes[0]))
            assert excinfo.value.status == 400

    def test_stream_with_priority_and_client_id(self, running_server, request_codes):
        with RecognitionClient(
            "127.0.0.1", running_server.port, client_id="edge-7"
        ) as client:
            events = list(
                client.recognise_stream(
                    request_codes[:4], seeds=[1, 2, 3, 4], priority=4
                )
            )
            assert events[-1]["ok"] == 4
            stats = client.stats()
        assert stats["clients"]["edge-7"]["submitted"] == 4
        assert stats["priorities"]["4"]["completed"] == 4


class TestWindowedSubmission:
    def test_request_larger_than_queue_streams_through(self, serving_amm, request_codes):
        """64 rows through a queue that admits 8: impossible buffered,
        routine streamed — the windows are bounded server-side buffering."""
        service = RecognitionService(
            serving_amm, max_batch_size=4, max_wait=0.0, max_queue_depth=8, workers=2
        )
        server = start_server(service, port=0)
        codes = np.tile(request_codes, (3, 1))[:64]
        seeds = list(range(64))
        try:
            with RecognitionClient("127.0.0.1", server.port) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.recognise_many(codes, seeds=seeds)
                assert excinfo.value.status == 400  # never admittable buffered
                events = list(client.recognise_stream(codes, seeds=seeds))
            assert events[-1] == {"done": True, "count": 64, "ok": 64, "failed": 0}
            reference = serving_amm.recognise_batch_seeded(codes, seeds)
            rows = [event for event in events if "result" in event]
            for index, row in enumerate(rows):
                assert row["index"] == index
                assert row["result"]["winner"] == reference[index].winner
                assert row["result"]["dom_code"] == reference[index].dom_code
                # Discrete fields exactly; the analog power to solver
                # precision (replica engines may take another BLAS path).
                assert row["result"]["static_power_w"] == pytest.approx(
                    reference[index].static_power, rel=1e-9
                )
        finally:
            stop_server(server)

    def test_window_clamped_to_quota_inflight_cap(self, serving_amm, request_codes):
        """A client whose max_inflight is below the default window must
        still be able to stream: the window shrinks to the cap instead
        of every window submission being denied outright."""
        from repro.serving import QuotaConfig

        service = RecognitionService(
            serving_amm,
            max_batch_size=32,  # default window 64 > the cap of 4
            max_wait=0.0,
            workers=1,
            quota=QuotaConfig(rate=1e9, burst=256, max_inflight=4),
        )
        server = start_server(service, port=0)
        try:
            with RecognitionClient(
                "127.0.0.1", server.port, client_id="small-tenant"
            ) as client:
                events = list(
                    client.recognise_stream(
                        request_codes[:12], seeds=list(range(12))
                    )
                )
            assert events[-1] == {"done": True, "count": 12, "ok": 12, "failed": 0}
        finally:
            stop_server(server)

    def test_stream_honours_per_row_timeout_ms_on_healthy_server(
        self, running_server, request_codes
    ):
        """timeout_ms is a per-row dispatch deadline, not a whole-stream
        budget: a healthy server streams every row within it."""
        with RecognitionClient("127.0.0.1", running_server.port) as client:
            events = list(
                client.recognise_stream(
                    request_codes[:6], seeds=list(range(6)), timeout_ms=30_000
                )
            )
        assert events[-1]["ok"] == 6

    def test_service_level_window_generator(self, serving_amm, request_codes, request_seeds):
        with RecognitionService(
            serving_amm, max_batch_size=4, max_wait=0.0, workers=1
        ) as service:
            events = list(
                service.recognise_stream(
                    request_codes, seeds=list(request_seeds), window=4, timeout=30.0
                )
            )
            reference = serving_amm.recognise_batch_seeded(request_codes, request_seeds)
            assert [index for index, _ in events] == list(range(len(request_seeds)))
            for index, outcome in events:
                assert not isinstance(outcome, BaseException)
                assert outcome.winner_column == reference[index].winner_column


class TestPartialFailure:
    def test_expired_rows_become_error_objects(
        self, serving_amm, request_codes, recall_gate
    ):
        """Rows that miss their deadline resolve as per-row 504 error
        objects inside an HTTP-200 stream — not a dropped response."""
        gate, _ = recall_gate
        service = RecognitionService(
            serving_amm, max_batch_size=1, max_wait=0.0, workers=1
        )
        server = start_server(service, port=0)
        try:
            # Fill the gated dispatch pipeline from a side thread so the
            # streamed rows sit in the queue past their 1 ms deadline.
            blockers = [
                service.submit(request_codes[index], seed=100 + index)
                for index in range(3)
            ]
            release = threading.Timer(0.3, gate.set)
            release.start()
            try:
                with RecognitionClient("127.0.0.1", server.port) as client:
                    events = list(
                        client.recognise_stream(
                            request_codes[:4], seeds=[1, 2, 3, 4], timeout_ms=1.0
                        )
                    )
            finally:
                release.join()
            summary = events[-1]
            assert summary["done"] is True
            assert summary["failed"] == 4 and summary["ok"] == 0
            for event in events[:-1]:
                assert event["error"]["status"] == 504
                assert event["error"]["reason"] == "deadline"
                assert event["error"]["type"] == "DeadlineExceededError"
            for blocker in blockers:
                blocker.result(timeout=20.0)
            assert service.metrics.expired == 4
        finally:
            gate.set()
            stop_server(server)

    def test_service_stream_yields_exceptions_per_row(
        self, serving_amm, request_codes, recall_gate
    ):
        gate, _ = recall_gate
        service = RecognitionService(
            serving_amm, max_batch_size=1, max_wait=0.0, workers=1
        )
        try:
            blockers = [
                service.submit(request_codes[index], seed=100 + index)
                for index in range(3)
            ]
            release = threading.Timer(0.3, gate.set)
            release.start()
            try:
                events = list(
                    service.recognise_stream(
                        request_codes[:3],
                        seeds=[1, 2, 3],
                        timeout_ms=1.0,
                        timeout=20.0,
                    )
                )
            finally:
                release.join()
            assert len(events) == 3
            for _, outcome in events:
                assert isinstance(outcome, DeadlineExceededError)
            for blocker in blockers:
                blocker.result(timeout=20.0)
        finally:
            gate.set()
            service.close()

    def test_whole_stream_timeout_fails_remaining_rows(
        self, serving_amm, request_codes, recall_gate
    ):
        gate, recalled = recall_gate
        service = RecognitionService(
            serving_amm, max_batch_size=1, max_wait=0.0, workers=1
        )
        try:
            blockers = [
                service.submit(request_codes[index], seed=100 + index)
                for index in range(3)
            ]
            events = list(
                service.recognise_stream(
                    request_codes[:4], seeds=[1, 2, 3, 4], timeout=0.3
                )
            )
            assert [index for index, _ in events] == [0, 1, 2, 3]
            assert all(
                isinstance(outcome, concurrent.futures.TimeoutError)
                for _, outcome in events
            )
            gate.set()
            for blocker in blockers:
                blocker.result(timeout=20.0)
            # The timed-out rows were cancelled, not solved.
            assert not (set(recalled) & {1, 2, 3, 4})
        finally:
            gate.set()
            service.close()


class TestMidStreamClose:
    def test_close_fails_remaining_rows_per_row(
        self, serving_amm, request_codes, recall_gate
    ):
        """A service closed mid-stream resolves every remaining row with
        ServiceClosedError events — the stream ends, it does not hang or
        blow up the generator."""
        from repro.serving import ServiceClosedError

        gate, _ = recall_gate
        service = RecognitionService(
            serving_amm, max_batch_size=1, max_wait=0.0, workers=1
        )
        events = []
        try:
            stream = service.recognise_stream(
                request_codes[:6], seeds=[1, 2, 3, 4, 5, 6], window=2, timeout=30.0
            )
            closer = threading.Timer(0.3, lambda: service.close(timeout=0.1))
            closer.start()
            release = threading.Timer(1.0, gate.set)
            release.start()
            try:
                events = list(stream)
            finally:
                closer.join()
                release.join()
            assert [index for index, _ in events] == list(range(6))
            # Whatever was in flight may have been served; everything the
            # closed service abandoned carries ServiceClosedError.
            failures = [
                outcome
                for _, outcome in events
                if isinstance(outcome, BaseException)
            ]
            assert failures, "close() during the stream produced no row errors"
            assert all(
                isinstance(outcome, ServiceClosedError) for outcome in failures
            )
        finally:
            gate.set()
            service.close()


class TestStreamAbandonment:
    @pytest.fixture()
    def slow_recalls(self, monkeypatch):
        """Slow every backend recall down and record the seeds actually
        solved — the instrument that shows cancelled rows never reached
        the engine."""
        import time as time_module

        from repro.backends.threaded import ThreadedBackend

        recalled: list = []
        original = ThreadedBackend.recall_batch_seeded

        def wrapped(self, codes_batch, request_seeds):
            time_module.sleep(0.15)
            recalled.extend(int(seed) for seed in request_seeds)
            return original(self, codes_batch, request_seeds)

        monkeypatch.setattr(ThreadedBackend, "recall_batch_seeded", wrapped)
        return recalled

    def test_disconnect_mid_ndjson_cancels_queued_rows(
        self, serving_amm, request_codes, slow_recalls
    ):
        """A client that walks away mid-stream must not keep the engine
        working: its still-queued rows are cancelled (counted under
        ``requests.cancelled``), their seeds never reach a recall, and
        the client's in-flight quota slots all come home — no leak."""
        from repro.serving import QuotaConfig
        from tests.serving.test_regressions import wait_for

        service = RecognitionService(
            serving_amm,
            max_batch_size=1,
            max_wait=0.0,
            workers=1,
            quota=QuotaConfig(rate=1e9, burst=256, max_inflight=256),
        )
        server = start_server(service, port=0)
        codes = np.tile(request_codes, (2, 1))[:24]
        seeds = list(range(1000, 1024))
        try:
            with RecognitionClient(
                "127.0.0.1", server.port, client_id="abandoner"
            ) as client:
                events = client.recognise_stream(codes, seeds=seeds)
                first = next(events)
                assert "result" in first
                # Walk away after one row: closing the generator drops
                # the connection with the stream unfinished.
                events.close()
            # The server notices the dead socket on a later write and
            # closes the service generator, cancelling queued rows.
            assert wait_for(
                lambda: service.metrics.cancelled > 0, timeout=20.0
            ), "no queued rows were cancelled after the disconnect"
            # Every in-flight row resolved (served, failed or cancelled):
            # the quota slots must all be released — nothing leaks.
            assert wait_for(
                lambda: service.quotas.inflight("abandoner") == 0, timeout=20.0
            ), "abandoned stream leaked in-flight quota slots"
            stats = service.stats()
            assert stats["requests"]["cancelled"] >= 1
            # The cancelled tail really was spared: at least one seed of
            # the request never reached the engine.
            assert set(seeds) - set(slow_recalls), (
                "every row was solved despite the client leaving"
            )
        finally:
            stop_server(server)

    def test_service_generator_close_cancels_and_releases_quota(
        self, serving_amm, request_codes, monkeypatch
    ):
        """Same contract one layer down: closing the service-level
        stream generator (what the HTTP handler does in its ``finally``)
        cancels the queued window rows and releases the client's quota
        slots."""
        from repro.backends.threaded import ThreadedBackend
        from repro.serving import QuotaConfig
        from tests.serving.test_regressions import wait_for

        # The first recall passes so the generator can yield one event
        # and suspend; every later recall blocks until released.
        gate = threading.Event()
        recalled: list = []
        passed_first = threading.Event()
        original = ThreadedBackend.recall_batch_seeded

        def wrapped(self, codes_batch, request_seeds):
            if passed_first.is_set():
                gate.wait(timeout=20.0)
            passed_first.set()
            recalled.extend(int(seed) for seed in request_seeds)
            return original(self, codes_batch, request_seeds)

        monkeypatch.setattr(ThreadedBackend, "recall_batch_seeded", wrapped)
        service = RecognitionService(
            serving_amm,
            max_batch_size=1,
            max_wait=0.0,
            workers=1,
            quota=QuotaConfig(rate=1e9, burst=256, max_inflight=256),
        )
        try:
            stream = service.recognise_stream(
                request_codes[:8],
                seeds=list(range(200, 208)),
                client_id="walker",
                window=8,
                timeout=30.0,
            )
            index, outcome = next(stream)  # whole window now submitted
            assert index == 0 and not isinstance(outcome, BaseException)
            assert service.quotas.inflight("walker") > 0
            stream.close()  # the client walked away
            assert wait_for(
                lambda: service.metrics.cancelled > 0, timeout=20.0
            ), "closing the stream generator cancelled nothing"
            gate.set()
            assert wait_for(
                lambda: service.quotas.inflight("walker") == 0, timeout=20.0
            ), "generator close leaked in-flight quota slots"
            # The cancelled tail never reached the engine.
            assert set(range(200, 208)) - set(recalled)
        finally:
            gate.set()
            service.close()


class TestStreamAdmission:
    def test_saturated_queue_streams_cleanly_rejected(
        self, serving_amm, request_codes, recall_gate
    ):
        """When nothing of the stream can be admitted, the caller gets the
        same clean 429 as a buffered request — not a broken stream."""
        gate, _ = recall_gate
        service = RecognitionService(
            serving_amm, max_batch_size=1, max_wait=0.0, max_queue_depth=2, workers=1
        )
        server = start_server(service, port=0)
        try:
            from repro.serving import BackpressureError

            # Saturate the whole pipeline: keep submitting through
            # transient rejections (batcher wakeup lag) until the gated
            # pipeline is full AND the bounded queue stays at capacity.
            import time as time_module

            admitted = []
            deadline = time_module.monotonic() + 10.0
            while time_module.monotonic() < deadline:
                try:
                    admitted.append(
                        service.submit(
                            request_codes[len(admitted) % 8], seed=len(admitted)
                        )
                    )
                except BackpressureError:
                    if len(admitted) >= 5 and service.queue_depth >= 2:
                        break
                    time_module.sleep(0.005)
            assert service.queue_depth >= 2
            with RecognitionClient("127.0.0.1", server.port) as client:
                with pytest.raises(ServerError) as excinfo:
                    list(
                        client.recognise_stream(
                            np.tile(request_codes[0], (4, 1)), seeds=[1, 2, 3, 4]
                        )
                    )
            assert excinfo.value.status == 429
            assert excinfo.value.reason == "backpressure"
            gate.set()
            for future in admitted:
                future.result(timeout=20.0)
        finally:
            gate.set()
            stop_server(server)
