"""HTTP front-end tests: endpoints, error mapping, clean shutdown."""

import http.client
import json

import numpy as np
import pytest

from repro.serving import (
    RecognitionClient,
    RecognitionService,
    ServerError,
    start_server,
    stop_server,
)


@pytest.fixture()
def running_server(serving_amm):
    service = RecognitionService(serving_amm, max_batch_size=8, max_wait=1e-3, workers=2)
    server = start_server(service, port=0)
    yield server
    if not service.closed:
        stop_server(server)


def raw_post(port, path, body: bytes, content_type="application/json"):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10.0)
    try:
        connection.request(
            "POST", path, body=body, headers={"Content-Type": content_type}
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


class TestEndpoints:
    def test_single_recognise_round_trip(self, running_server, serving_amm, request_codes):
        with RecognitionClient("127.0.0.1", running_server.port) as client:
            result = client.recognise(request_codes[0], seed=7)
        reference = serving_amm.recognise_batch_seeded(request_codes[:1], [7])[0]
        assert result["winner"] == reference.winner
        assert result["winner_column"] == reference.winner_column
        assert result["dom_code"] == reference.dom_code
        assert result["accepted"] == reference.accepted
        assert result["tie"] == reference.tie
        assert result["static_power_w"] == pytest.approx(
            reference.static_power, rel=1e-9
        )

    def test_multi_image_request(self, running_server, serving_amm, request_codes, request_seeds):
        with RecognitionClient("127.0.0.1", running_server.port) as client:
            results = client.recognise_many(request_codes[:5], seeds=request_seeds[:5])
        reference = serving_amm.recognise_batch_seeded(
            request_codes[:5], request_seeds[:5]
        )
        assert len(results) == 5
        for index, result in enumerate(results):
            assert result["winner"] == reference[index].winner
            assert result["dom_code"] == reference[index].dom_code

    def test_healthz(self, running_server):
        with RecognitionClient("127.0.0.1", running_server.port) as client:
            health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["array"] == {"rows": 32, "columns": 6}

    def test_stats_reflect_traffic(self, running_server, request_codes):
        with RecognitionClient("127.0.0.1", running_server.port) as client:
            client.recognise_many(request_codes[:6])
            stats = client.stats()
        assert stats["requests"]["submitted"] >= 6
        assert stats["requests"]["completed"] >= 6
        assert stats["batches"]["dispatched"] >= 1
        assert stats["latency"]["samples"] >= 6
        json.dumps(stats)  # snapshot must stay JSON-serialisable


class TestErrorMapping:
    def test_unknown_path_404(self, running_server):
        status, payload = raw_post(running_server.port, "/nope", b"{}")
        assert status == 404 and "error" in payload

    def test_malformed_json_400(self, running_server):
        status, payload = raw_post(running_server.port, "/recognise", b"{not json")
        assert status == 400 and "error" in payload

    def test_wrong_shape_400(self, running_server):
        body = json.dumps({"codes": [1, 2, 3]}).encode()
        status, payload = raw_post(running_server.port, "/recognise", body)
        assert status == 400 and "error" in payload

    def test_missing_body_411(self, running_server):
        status, payload = raw_post(running_server.port, "/recognise", b"")
        assert status == 411
        assert payload["reason"] == "length_required"

    def test_overflowing_seed_400(self, running_server, request_codes):
        body = json.dumps(
            {"codes": request_codes[0].tolist(), "seed": 2**63}
        ).encode()
        status, payload = raw_post(running_server.port, "/recognise", body)
        assert status == 400 and "error" in payload

    def test_never_admittable_batch_400_not_429(self, serving_amm, request_codes):
        from repro.serving import RecognitionService, start_server, stop_server

        service = RecognitionService(serving_amm, max_batch_size=4, max_queue_depth=4)
        server = start_server(service, port=0)
        try:
            rows = np.tile(request_codes[0], (6, 1)).tolist()
            status, payload = raw_post(
                server.port, "/recognise", json.dumps({"codes": rows}).encode()
            )
            assert status == 400
            assert "split (or stream) the request" in payload["error"]
        finally:
            stop_server(server)

    def test_client_raises_server_error(self, running_server):
        with RecognitionClient("127.0.0.1", running_server.port) as client:
            with pytest.raises(ServerError) as excinfo:
                client.recognise(np.zeros(3, dtype=int))
        assert excinfo.value.status == 400

    def test_oversized_body_400_and_connection_close(self, running_server):
        from repro.serving.protocol import MAX_BODY_BYTES

        connection = http.client.HTTPConnection(
            "127.0.0.1", running_server.port, timeout=10.0
        )
        try:
            # Declare an oversized body without streaming it: the server
            # must reject on the declared length, before reading.
            connection.putrequest("POST", "/recognise")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            connection.endheaders()
            connection.send(b"{}")
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert "exceeds" in payload["error"]
            # The unread body desynchronises keep-alive, so the server
            # must drop the connection instead of reusing it.
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()

    def test_unserved_request_maps_to_504(self, running_server, request_codes, monkeypatch):
        import threading

        import repro.serving.server as server_module
        from repro.backends.threaded import ThreadedBackend

        gate = threading.Event()
        original = ThreadedBackend.recall_batch_seeded

        def gated_recall(self, codes_batch, request_seeds):
            gate.wait(timeout=20.0)
            return original(self, codes_batch, request_seeds)

        monkeypatch.setattr(ThreadedBackend, "recall_batch_seeded", gated_recall)
        monkeypatch.setattr(server_module, "DEFAULT_REQUEST_TIMEOUT", 0.05)
        try:
            body = json.dumps({"codes": request_codes[0].tolist()}).encode()
            status, payload = raw_post(running_server.port, "/recognise", body)
            assert status == 504
            assert "error" in payload
        finally:
            gate.set()

    def test_closed_service_maps_to_503(self, running_server, request_codes):
        running_server.service.close()
        body = json.dumps({"codes": request_codes[0].tolist()}).encode()
        status, payload = raw_post(running_server.port, "/recognise", body)
        assert status == 503
        stop_server(running_server, close_service=False)


def test_clean_shutdown_and_port_release(serving_amm, request_codes):
    service = RecognitionService(serving_amm, max_batch_size=4, max_wait=0.0)
    server = start_server(service, port=0)
    port = server.port
    with RecognitionClient("127.0.0.1", port) as client:
        client.recognise(request_codes[0])
    stop_server(server)
    assert service.closed
    # The socket is released: a fresh service can bind the same port.
    second_service = RecognitionService(serving_amm, max_batch_size=4, max_wait=0.0)
    second = start_server(second_service, port=port)
    assert second.port == port
    stop_server(second)


def test_explicit_port_boot_uses_free_port_fixture(
    serving_amm, request_codes, free_port
):
    """The pattern for tests that must name a port up front: take it
    from the shared ``free_port`` fixture (never a hard-coded number or
    a bind-retry loop) and serve on it normally."""
    service = RecognitionService(serving_amm, max_batch_size=4, max_wait=0.0)
    server = start_server(service, port=free_port)
    try:
        assert server.port == free_port
        with RecognitionClient("127.0.0.1", free_port) as client:
            assert client.healthz()["status"] == "ok"
            client.recognise(request_codes[0], seed=3)
    finally:
        stop_server(server)
