"""Request-priority tests: ordering, shedding, stats, invariance.

Priorities reorder and shed *work* — high-priority requests coalesce
and dispatch first, and a full queue evicts queued lower-priority
requests before rejecting a higher-priority arrival — but they must
never change *answers*: the seeded-recall invariant (results identical
across arrival order, backend, worker count and batch boundary) holds
with priorities enabled, which the cross-backend matrix here pins.
"""

from __future__ import annotations


import pytest

from repro.serving import (
    BackpressureError,
    MAX_PRIORITY,
    RecognitionService,
    ServerError,
    RecognitionClient,
    start_server,
    stop_server,
)
from tests.serving.test_regressions import wait_for

class TestValidation:
    def test_priority_out_of_range_rejected(self, serving_amm, request_codes):
        with RecognitionService(serving_amm) as service:
            with pytest.raises(ValueError, match="priority"):
                service.submit(request_codes[0], priority=-1)
            with pytest.raises(ValueError, match="priority"):
                service.submit(request_codes[0], priority=MAX_PRIORITY + 1)
            with pytest.raises(ValueError, match="priority"):
                service.submit(request_codes[0], priority=1.5)

    def test_client_id_validation(self, serving_amm, request_codes):
        with RecognitionService(serving_amm) as service:
            with pytest.raises(ValueError, match="client_id"):
                service.submit(request_codes[0], client_id="")
            with pytest.raises(ValueError, match="client_id"):
                service.submit(request_codes[0], client_id="x" * 129)

    def test_http_priority_validation(self, serving_amm, request_codes):
        service = RecognitionService(serving_amm, max_batch_size=8, max_wait=1e-3)
        server = start_server(service, port=0)
        try:
            with RecognitionClient("127.0.0.1", server.port) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.recognise(request_codes[0], priority=42)
                assert excinfo.value.status == 400
                result = client.recognise(request_codes[0], seed=3, priority=5)
                assert "winner" in result
        finally:
            stop_server(server)


class TestDispatchOrdering:
    def test_high_priority_overtakes_queued_lows(
        self, serving_amm, request_codes, recall_gate
    ):
        gate, recalled = recall_gate
        service = RecognitionService(
            serving_amm, max_batch_size=1, max_wait=0.0, workers=1
        )
        try:
            # Fill the gated dispatch pipeline so later traffic queues.
            blockers = [
                service.submit(request_codes[index], seed=100 + index)
                for index in range(3)
            ]
            assert wait_for(lambda: service.queue_depth == 0)
            lows = [
                service.submit(request_codes[4 + index], seed=index + 1, priority=0)
                for index in range(3)
            ]
            high = service.submit(request_codes[7], seed=9, priority=9)
            gate.set()
            high.result(timeout=20.0)
            for future in blockers + lows:
                future.result(timeout=20.0)
            # The high-priority request left the queue before every
            # queued low, despite arriving last.
            assert recalled.index(9) < min(recalled.index(seed) for seed in (1, 2, 3))
        finally:
            gate.set()
            service.close()

    def test_fifo_within_a_priority_level(
        self, serving_amm, request_codes, recall_gate
    ):
        gate, recalled = recall_gate
        service = RecognitionService(
            serving_amm, max_batch_size=1, max_wait=0.0, workers=1
        )
        try:
            blockers = [
                service.submit(request_codes[index], seed=100 + index)
                for index in range(3)
            ]
            assert wait_for(lambda: service.queue_depth == 0)
            futures = [
                service.submit(request_codes[4 + index], seed=index + 1, priority=3)
                for index in range(3)
            ]
            gate.set()
            for future in blockers + futures:
                future.result(timeout=20.0)
            assert recalled.index(1) < recalled.index(2) < recalled.index(3)
        finally:
            gate.set()
            service.close()


class TestShedding:
    def build_saturated(self, serving_amm, request_codes, gate_pair, depth=3):
        """A service whose dispatch pipeline is gated and whose queue is
        full of priority-0 requests."""
        gate, _ = gate_pair
        service = RecognitionService(
            serving_amm,
            max_batch_size=1,
            max_wait=0.0,
            max_queue_depth=depth,
            workers=1,
        )
        blockers = [
            service.submit(request_codes[index], seed=100 + index) for index in range(3)
        ]
        assert wait_for(lambda: service.queue_depth == 0)
        lows = [
            service.submit(request_codes[4 + index], seed=index + 1, priority=0)
            for index in range(depth)
        ]
        assert service.queue_depth == depth
        return service, blockers, lows

    def test_equal_priority_still_rejected(
        self, serving_amm, request_codes, recall_gate
    ):
        service, blockers, lows = self.build_saturated(
            serving_amm, request_codes, recall_gate
        )
        gate, _ = recall_gate
        try:
            with pytest.raises(BackpressureError):
                service.submit(request_codes[8], seed=50, priority=0)
            assert service.metrics.rejected == 1
            assert service.metrics.shed == 0
        finally:
            gate.set()
            service.close()

    def test_high_priority_sheds_newest_low(
        self, serving_amm, request_codes, recall_gate
    ):
        service, blockers, lows = self.build_saturated(
            serving_amm, request_codes, recall_gate
        )
        gate, _ = recall_gate
        try:
            high = service.submit(request_codes[8], seed=77, priority=5)
            # The newest low was evicted; its future failed immediately
            # with BackpressureError and the shed counter moved.
            with pytest.raises(BackpressureError):
                lows[-1].result(timeout=1.0)
            assert service.metrics.shed == 1
            assert service.metrics.rejected == 0
            assert service.queue_depth == 3
            gate.set()
            assert high.result(timeout=20.0) is not None
            for future in blockers + lows[:-1]:
                assert future.result(timeout=20.0) is not None
            assert service.stats()["requests"]["shed"] == 1
        finally:
            gate.set()
            service.close()

    def test_shedding_evicts_whole_submissions(
        self, serving_amm, request_codes, recall_gate
    ):
        """Evicting one row of a multi-row submission sheds its whole
        group: the caller's gather fails on the first shed row anyway,
        so surviving siblings would only waste engine time."""
        gate, _ = recall_gate
        service = RecognitionService(
            serving_amm,
            max_batch_size=1,
            max_wait=0.0,
            max_queue_depth=4,
            workers=1,
        )
        try:
            blockers = [
                service.submit(request_codes[index], seed=100 + index)
                for index in range(3)
            ]
            assert wait_for(lambda: service.queue_depth == 0)
            single = service.submit(request_codes[4], seed=1, priority=0)
            group = service.submit_many(
                request_codes[5:8], seeds=[2, 3, 4], priority=0
            )
            assert service.queue_depth == 4
            high = service.submit(request_codes[8], seed=77, priority=5)
            # The newest victim is a group row — the whole 3-row
            # submission is shed; the older single survives.
            assert service.metrics.shed == 3
            for future in group:
                with pytest.raises(BackpressureError):
                    future.result(timeout=1.0)
            assert not single.done()
            gate.set()
            assert high.result(timeout=20.0) is not None
            assert single.result(timeout=20.0) is not None
            for blocker in blockers:
                blocker.result(timeout=20.0)
        finally:
            gate.set()
            service.close()

    def test_multi_row_high_submission_sheds_enough(
        self, serving_amm, request_codes, recall_gate
    ):
        service, blockers, lows = self.build_saturated(
            serving_amm, request_codes, recall_gate
        )
        gate, _ = recall_gate
        try:
            highs = service.submit_many(
                request_codes[8:10], seeds=[71, 72], priority=7
            )
            shed = [future for future in lows if future.done()]
            assert len(shed) == 2
            assert service.metrics.shed == 2
            gate.set()
            for future in highs:
                assert future.result(timeout=20.0) is not None
        finally:
            gate.set()
            service.close()


class TestStats:
    def test_per_priority_sections(self, serving_amm, request_codes):
        with RecognitionService(serving_amm, max_batch_size=8, max_wait=1e-3) as service:
            service.recognise(request_codes[0], seed=1, priority=0, timeout=20.0)
            service.recognise(request_codes[1], seed=2, priority=6, timeout=20.0)
            stats = service.stats()
            assert stats["priorities"]["0"]["submitted"] == 1
            assert stats["priorities"]["6"]["completed"] == 1
            assert stats["priorities"]["6"]["latency"]["samples"] == 1
            import json

            json.dumps(stats)


class TestPriorityInvariance:
    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_results_identical_across_backends_with_priorities(
        self, serving_amm, request_codes, request_seeds, backend
    ):
        """The cross-backend equivalence matrix holds with priorities on:
        a request's answer is a pure function of (module, codes, seed),
        whatever priority it ran at and wherever it was solved."""
        from tests.serving.test_service_determinism import assert_request_equal

        reference = serving_amm.recognise_batch_seeded(request_codes, request_seeds)
        priorities = [(index * 7) % (MAX_PRIORITY + 1) for index in range(len(request_seeds))]
        with RecognitionService(
            serving_amm,
            max_batch_size=8,
            max_wait=2e-3,
            workers=2,
            backend=backend,
        ) as service:
            futures = [
                service.submit(
                    request_codes[index],
                    seed=int(request_seeds[index]),
                    priority=priorities[index],
                )
                for index in range(len(request_seeds))
            ]
            results = [future.result(timeout=60.0) for future in futures]
        for index, result in enumerate(results):
            assert_request_equal(result, reference[index])
