"""Semantics matrix for the asyncio front end (`repro.serving.aio`).

The async server must be behaviourally indistinguishable from the
threaded reference over the JSON API — same results bit for bit, same
error taxonomy (400/404/408/411/429/503/504), same priority, quota,
deadline and streaming semantics.  Both front ends are built on
``repro.serving.protocol``, and this file pins the equivalence from the
outside: every test drives real sockets against a real server.

The body-limit regressions (trickling client, oversized declaration,
chunked upload) are tested against *both* front ends here, since the
threaded server's slow-body deadline landed in the same change.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading

import numpy as np
import pytest

import repro.serving.aio as aio_module
import repro.serving.server as server_module
from repro.serving import (
    QuotaConfig,
    RecognitionClient,
    RecognitionService,
    ServerError,
    start_async_server,
    start_server,
    stop_async_server,
    stop_server,
)
from tests.serving.test_regressions import wait_for


def make_service(serving_amm, **overrides):
    settings = dict(max_batch_size=8, max_wait=1e-3, workers=2)
    settings.update(overrides)
    return RecognitionService(serving_amm, **settings)


@pytest.fixture()
def async_server(serving_amm):
    service = make_service(serving_amm)
    server = start_async_server(service, port=0, binary_port=None)
    yield server
    if not service.closed:
        stop_async_server(server)


def raw_post(port, path, body: bytes, content_type="application/json"):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10.0)
    try:
        connection.request(
            "POST", path, body=body, headers={"Content-Type": content_type}
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


class TestJsonParity:
    def test_single_round_trip_matches_engine(
        self, async_server, serving_amm, request_codes
    ):
        with RecognitionClient("127.0.0.1", async_server.port) as client:
            result = client.recognise(request_codes[0], seed=7)
        reference = serving_amm.recognise_batch_seeded(request_codes[:1], [7])[0]
        assert result["winner"] == reference.winner
        assert result["winner_column"] == reference.winner_column
        assert result["dom_code"] == reference.dom_code
        assert result["accepted"] == reference.accepted
        assert result["tie"] == reference.tie
        assert result["static_power_w"] == pytest.approx(
            reference.static_power, rel=1e-9
        )

    def test_bit_identical_with_threaded_frontend(
        self, serving_amm, request_codes, request_seeds
    ):
        """The determinism contract is frontend-independent: the same
        (codes, seeds) through either front end yields byte-identical
        JSON result objects."""
        seeds = [int(seed) for seed in request_seeds[:10]]
        threaded = start_server(make_service(serving_amm), port=0)
        try:
            with RecognitionClient("127.0.0.1", threaded.port) as client:
                via_threads = client.recognise_many(request_codes[:10], seeds=seeds)
        finally:
            stop_server(threaded)
        asynch = start_async_server(make_service(serving_amm), port=0, binary_port=None)
        try:
            with RecognitionClient("127.0.0.1", asynch.port) as client:
                via_loop = client.recognise_many(request_codes[:10], seeds=seeds)
        finally:
            stop_async_server(asynch)
        assert via_loop == via_threads

    def test_streaming_matches_threaded_frontend(
        self, serving_amm, request_codes, request_seeds
    ):
        seeds = [int(seed) for seed in request_seeds[:8]]

        def collect(port):
            with RecognitionClient("127.0.0.1", port) as client:
                return list(client.recognise_stream(request_codes[:8], seeds=seeds))

        threaded = start_server(make_service(serving_amm), port=0)
        try:
            threaded_lines = collect(threaded.port)
        finally:
            stop_server(threaded)
        asynch = start_async_server(make_service(serving_amm), port=0, binary_port=None)
        try:
            async_lines = collect(asynch.port)
        finally:
            stop_async_server(asynch)
        assert async_lines == threaded_lines
        assert async_lines[-1] == {"done": True, "count": 8, "ok": 8, "failed": 0}

    def test_healthz_and_stats(self, async_server):
        with RecognitionClient("127.0.0.1", async_server.port) as client:
            health = client.healthz()
            stats = client.stats()
        assert health["status"] == "ok"
        assert stats["frontend"]["kind"] == "async"
        assert stats["frontend"]["connections_total"] >= 1
        json.dumps(stats)  # snapshot must stay JSON-serialisable

    def test_keep_alive_reuses_one_connection(self, async_server, request_codes):
        with RecognitionClient("127.0.0.1", async_server.port) as client:
            for index in range(5):
                client.recognise(request_codes[index], seed=index)
            stats = client.stats()
        assert stats["frontend"]["connections_total"] == 1

    def test_many_concurrent_connections(self, async_server, request_codes):
        """One event loop, many simultaneous keep-alive clients."""
        errors: list = []

        def hit(index):
            try:
                with RecognitionClient("127.0.0.1", async_server.port) as client:
                    result = client.recognise(
                        request_codes[index % len(request_codes)], seed=index
                    )
                    assert "winner" in result
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=hit, args=(i,)) for i in range(32)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        with RecognitionClient("127.0.0.1", async_server.port) as client:
            assert client.stats()["frontend"]["connections_total"] >= 32


class TestErrorTaxonomy:
    def test_unknown_path_404(self, async_server):
        status, payload = raw_post(async_server.port, "/nope", b"{}")
        assert status == 404 and "error" in payload

    def test_malformed_json_400(self, async_server):
        status, payload = raw_post(async_server.port, "/recognise", b"{not json")
        assert status == 400 and "error" in payload

    def test_wrong_shape_400(self, async_server):
        body = json.dumps({"codes": [1, 2, 3]}).encode()
        status, payload = raw_post(async_server.port, "/recognise", body)
        assert status == 400 and "error" in payload

    def test_missing_body_411(self, async_server):
        status, payload = raw_post(async_server.port, "/recognise", b"")
        assert status == 411
        assert payload["reason"] == "length_required"

    def test_overflowing_seed_400(self, async_server, request_codes):
        body = json.dumps(
            {"codes": request_codes[0].tolist(), "seed": 2**63}
        ).encode()
        status, payload = raw_post(async_server.port, "/recognise", body)
        assert status == 400 and "error" in payload

    def test_unserved_request_maps_to_504(
        self, async_server, request_codes, recall_gate, monkeypatch
    ):
        gate, _ = recall_gate
        monkeypatch.setattr(aio_module, "DEFAULT_REQUEST_TIMEOUT", 0.05)
        try:
            body = json.dumps({"codes": request_codes[0].tolist()}).encode()
            status, payload = raw_post(async_server.port, "/recognise", body)
            assert status == 504
            assert payload["reason"] == "deadline"
        finally:
            gate.set()

    def test_closed_service_maps_to_503(self, async_server, request_codes):
        async_server.service.close()
        body = json.dumps({"codes": request_codes[0].tolist()}).encode()
        status, payload = raw_post(async_server.port, "/recognise", body)
        assert status == 503
        stop_async_server(async_server, close_service=False)

    def test_quota_denial_maps_to_429(self, serving_amm, request_codes):
        service = make_service(
            serving_amm, quota=QuotaConfig(rate=1.0, burst=2, max_inflight=64)
        )
        server = start_async_server(service, port=0, binary_port=None)
        try:
            with RecognitionClient(
                "127.0.0.1", server.port, client_id="greedy"
            ) as client:
                with pytest.raises(ServerError) as excinfo:
                    for _ in range(4):
                        client.recognise(request_codes[0], seed=1)
            assert excinfo.value.status == 429
            assert excinfo.value.reason == "quota"
        finally:
            stop_async_server(server)

    def test_priority_overtakes_queued_lows_over_http(
        self, serving_amm, request_codes, recall_gate
    ):
        """The admission-priority contract holds through the async front
        end: a high-priority HTTP request leaves the queue before every
        already-queued low."""
        gate, recalled = recall_gate
        service = RecognitionService(
            serving_amm, max_batch_size=1, max_wait=0.0, workers=1
        )
        server = start_async_server(service, port=0, binary_port=None)
        try:
            blockers = [
                service.submit(request_codes[index], seed=100 + index)
                for index in range(3)
            ]
            assert wait_for(lambda: service.queue_depth == 0)
            lows = [
                service.submit(request_codes[4 + index], seed=index + 1, priority=0)
                for index in range(3)
            ]

            outcome: dict = {}

            def post_high():
                with RecognitionClient("127.0.0.1", server.port) as client:
                    outcome["result"] = client.recognise(
                        request_codes[7], seed=9, priority=9
                    )

            poster = threading.Thread(target=post_high)
            poster.start()
            # The gate only opens once the HTTP request is in the queue
            # (3 blockers + 3 lows + 1 high submitted).
            assert wait_for(lambda: service.metrics.submitted == 7)
            gate.set()
            poster.join(timeout=20.0)
            for future in blockers + lows:
                future.result(timeout=20.0)
            assert "winner" in outcome["result"]
            assert recalled.index(9) < min(
                recalled.index(seed) for seed in (1, 2, 3)
            )
        finally:
            gate.set()
            stop_async_server(server)


class TestBodyLimits:
    """Content-Length enforcement and slow-body deadlines, both front ends."""

    @pytest.fixture(params=["threaded", "async"])
    def either_server(self, request, serving_amm):
        service = make_service(serving_amm)
        if request.param == "async":
            server = start_async_server(service, port=0, binary_port=None)
            yield request.param, server
            if not service.closed:
                stop_async_server(server)
        else:
            server = start_server(service, port=0)
            yield request.param, server
            if not service.closed:
                stop_server(server)

    def _timeout_module(self, kind):
        return aio_module if kind == "async" else server_module

    def test_oversized_declaration_rejected_before_read(self, either_server):
        from repro.serving import protocol

        kind, server = either_server
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=10.0
        )
        try:
            connection.putrequest("POST", "/recognise")
            connection.putheader("Content-Type", "application/json")
            connection.putheader(
                "Content-Length", str(protocol.MAX_BODY_BYTES + 1)
            )
            connection.endheaders()
            connection.send(b"{}")
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert "exceeds" in payload["error"]
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()

    def test_chunked_body_rejected_411(self, either_server):
        kind, server = either_server
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=10.0
        )
        try:
            connection.putrequest("POST", "/recognise")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Transfer-Encoding", "chunked")
            connection.endheaders()
            connection.send(b"2\r\n{}\r\n0\r\n\r\n")
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 411
            assert payload["reason"] == "length_required"
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()

    def test_trickling_client_hits_read_deadline(
        self, either_server, monkeypatch
    ):
        """A client that declares a body and then stalls cannot hold a
        handler past ``BODY_READ_TIMEOUT``: the server answers 408 and
        drops the connection."""
        kind, server = either_server
        monkeypatch.setattr(self._timeout_module(kind), "BODY_READ_TIMEOUT", 0.3)
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=10.0
        ) as sock:
            sock.sendall(
                b"POST /recognise HTTP/1.1\r\n"
                b"Host: test\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 4096\r\n"
                b"\r\n"
                b'{"codes'  # a trickle, then silence
            )
            sock.settimeout(10.0)
            raw = b""
            while b"\r\n\r\n" not in raw:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                raw += chunk
            head, _, rest = raw.partition(b"\r\n\r\n")
            assert b" 408 " in head.split(b"\r\n", 1)[0]
            assert b"connection: close" in head.lower()
            while True:  # server must actively close, not linger
                chunk = sock.recv(4096)
                if not chunk:
                    break
                rest += chunk
            payload = json.loads(rest)
            assert payload["reason"] == "slow_body"


class TestStreamingSemantics:
    def test_per_row_deadline_errors_in_stream(
        self, serving_amm, request_codes, monkeypatch
    ):
        """Rows that miss their dispatch deadline stream back as per-row
        error lines; the summary tallies them."""
        import time as time_module

        from repro.backends.threaded import ThreadedBackend

        original = ThreadedBackend.recall_batch_seeded

        def slowed(self, codes_batch, request_seeds):
            time_module.sleep(0.2)
            return original(self, codes_batch, request_seeds)

        monkeypatch.setattr(ThreadedBackend, "recall_batch_seeded", slowed)
        service = make_service(serving_amm, max_batch_size=1, workers=1)
        server = start_async_server(service, port=0, binary_port=None)
        try:
            with RecognitionClient("127.0.0.1", server.port) as client:
                lines = list(
                    client.recognise_stream(
                        request_codes[:6],
                        seeds=list(range(6)),
                        timeout_ms=50.0,
                    )
                )
        finally:
            stop_async_server(server)
        summary = lines[-1]
        assert summary["done"] is True and summary["count"] == 6
        assert summary["failed"] >= 1
        assert summary["ok"] + summary["failed"] == 6
        failures = [line for line in lines[:-1] if "error" in line]
        assert len(failures) == summary["failed"]
        assert all(line["error"]["reason"] == "deadline" for line in failures)

    def test_disconnect_mid_stream_cancels_queued_rows(
        self, serving_amm, request_codes, monkeypatch
    ):
        """The abandonment contract holds on the async path: a client
        that walks away mid-NDJSON gets its queued rows cancelled and
        its quota slots released."""
        import time as time_module

        from repro.backends.threaded import ThreadedBackend

        recalled: list = []
        original = ThreadedBackend.recall_batch_seeded

        def slowed(self, codes_batch, request_seeds):
            time_module.sleep(0.15)
            recalled.extend(int(seed) for seed in request_seeds)
            return original(self, codes_batch, request_seeds)

        monkeypatch.setattr(ThreadedBackend, "recall_batch_seeded", slowed)
        service = RecognitionService(
            serving_amm,
            max_batch_size=1,
            max_wait=0.0,
            workers=1,
            quota=QuotaConfig(rate=1e9, burst=256, max_inflight=256),
        )
        server = start_async_server(service, port=0, binary_port=None)
        codes = np.tile(request_codes, (2, 1))[:24]
        seeds = list(range(1000, 1024))
        try:
            with RecognitionClient(
                "127.0.0.1", server.port, client_id="abandoner"
            ) as client:
                events = client.recognise_stream(codes, seeds=seeds)
                first = next(events)
                assert "result" in first
                events.close()
            assert wait_for(
                lambda: service.metrics.cancelled > 0, timeout=20.0
            ), "no queued rows were cancelled after the disconnect"
            assert wait_for(
                lambda: service.quotas.inflight("abandoner") == 0, timeout=20.0
            ), "abandoned stream leaked in-flight quota slots"
            assert set(seeds) - set(recalled), (
                "every row was solved despite the client leaving"
            )
        finally:
            stop_async_server(server)


def test_clean_shutdown_and_port_release(serving_amm, request_codes):
    service = make_service(serving_amm, max_batch_size=4, max_wait=0.0)
    server = start_async_server(service, port=0, binary_port=0)
    port = server.port
    with RecognitionClient("127.0.0.1", port) as client:
        client.recognise(request_codes[0])
    stop_async_server(server)
    assert service.closed
    second_service = make_service(serving_amm, max_batch_size=4, max_wait=0.0)
    second = start_async_server(second_service, port=port, binary_port=0)
    assert second.port == port
    stop_async_server(second)
