"""Shared fixtures for the test suite.

All hardware-level fixtures use reduced geometries (small crossbars, few
templates, small synthetic images) so the full suite runs in seconds; the
full 128x40 reference design is exercised by the benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.amm import AssociativeMemoryModule
from repro.core.config import DesignParameters
from repro.datasets.attlike import FaceDataset, load_default_dataset
from repro.datasets.features import FeatureExtractor


SMALL_IMAGE_SHAPE = (64, 48)
SMALL_TEMPLATE_SHAPE = (8, 4)
SMALL_TEMPLATES = 6


@pytest.fixture(scope="session")
def small_parameters() -> DesignParameters:
    """Reduced design parameters: 32-element features, 6 templates."""
    return DesignParameters(
        template_shape=SMALL_TEMPLATE_SHAPE,
        num_templates=SMALL_TEMPLATES,
    )


@pytest.fixture(scope="session")
def small_dataset() -> FaceDataset:
    """A 6-subject, 4-image synthetic corpus with 64x48 images."""
    return load_default_dataset(
        subjects=SMALL_TEMPLATES,
        images_per_subject=4,
        image_shape=SMALL_IMAGE_SHAPE,
        seed=11,
    )


@pytest.fixture(scope="session")
def small_extractor(small_parameters) -> FeatureExtractor:
    """Feature extractor matching the reduced template geometry."""
    return FeatureExtractor(
        feature_shape=small_parameters.template_shape,
        bits=small_parameters.template_bits,
    )


@pytest.fixture(scope="session")
def small_template_codes(small_parameters) -> np.ndarray:
    """A deterministic random template matrix for the reduced design."""
    rng = np.random.default_rng(5)
    features = small_parameters.feature_length
    return rng.integers(
        0, 2**small_parameters.template_bits, size=(features, SMALL_TEMPLATES)
    )


@pytest.fixture(scope="session")
def small_amm(small_template_codes, small_parameters) -> AssociativeMemoryModule:
    """A programmed reduced AMM with parasitics enabled."""
    return AssociativeMemoryModule.from_templates(
        small_template_codes,
        parameters=small_parameters,
        include_parasitics=True,
        seed=21,
    )
