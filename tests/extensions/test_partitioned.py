"""Tests for the partitioned associative memory extension."""

import numpy as np
import pytest

from repro.core.config import DesignParameters
from repro.extensions.partitioned import PartitionedAssociativeMemory


@pytest.fixture(scope="module")
def templates():
    """Six equal-energy templates (permutations of the same value multiset).

    Equal column norms guarantee that the self-correlation of each template
    exceeds its cross-correlations (rearrangement inequality), so the flat
    module classifies them perfectly and the fixture isolates the effects
    of partitioning.
    """
    rng = np.random.default_rng(11)
    base = np.repeat(np.arange(32), 1)
    return np.stack([rng.permutation(base) for _ in range(6)], axis=1)


@pytest.fixture(scope="module")
def partitioned(templates):
    parameters = DesignParameters(template_shape=(8, 4), num_templates=templates.shape[1])
    return PartitionedAssociativeMemory(
        templates, partitions=2, parameters=parameters, seed=7
    )


class TestStructure:
    def test_partition_slices_cover_features(self, partitioned, templates):
        assert sum(partitioned.rows_per_module()) == templates.shape[0]
        assert len(partitioned.modules) == 2

    def test_each_module_sees_all_columns(self, partitioned, templates):
        for module in partitioned.modules:
            assert module.crossbar.columns == templates.shape[1]

    def test_invalid_construction(self, templates):
        with pytest.raises(ValueError):
            PartitionedAssociativeMemory(templates, partitions=100)
        with pytest.raises(ValueError):
            PartitionedAssociativeMemory(templates, labels=[1, 2], partitions=2)
        with pytest.raises(ValueError):
            PartitionedAssociativeMemory(np.zeros(5, dtype=int), partitions=1)


class TestRecall:
    def test_recalls_own_templates(self, partitioned, templates):
        correct = 0
        for column in range(templates.shape[1]):
            result = partitioned.recognise(templates[:, column])
            correct += result.winner == column
        assert correct >= templates.shape[1] - 1

    def test_partition_codes_shape(self, partitioned, templates):
        result = partitioned.recognise(templates[:, 0])
        assert result.partition_codes.shape == (2, templates.shape[1])
        assert np.array_equal(
            result.aggregate_codes, result.partition_codes.sum(axis=0)
        )

    def test_wrong_input_length_rejected(self, partitioned):
        with pytest.raises(ValueError):
            partitioned.recognise(np.zeros(10, dtype=int))

    def test_evaluate_statistics(self, partitioned, templates):
        stats = partitioned.evaluate(templates.T, list(range(templates.shape[1])))
        assert stats["accuracy"] >= 0.8
        assert 0.0 <= stats["tie_rate"] <= 1.0

    def test_agrees_with_flat_module_on_clear_inputs(self, templates):
        from repro.core.amm import AssociativeMemoryModule

        parameters = DesignParameters(template_shape=(8, 4), num_templates=templates.shape[1])
        flat = AssociativeMemoryModule.from_templates(templates, parameters=parameters, seed=7)
        split = PartitionedAssociativeMemory(
            templates, partitions=2, parameters=parameters, seed=7
        )
        agreements = 0
        for column in range(templates.shape[1]):
            flat_result = flat.recognise(templates[:, column])
            split_result = split.recognise(templates[:, column])
            agreements += flat_result.winner == split_result.winner
        assert agreements >= templates.shape[1] - 1


class TestCost:
    def test_energy_grows_with_partitions(self, templates):
        parameters = DesignParameters(template_shape=(8, 4), num_templates=templates.shape[1])
        two = PartitionedAssociativeMemory(templates, partitions=2, parameters=parameters, seed=1)
        four = PartitionedAssociativeMemory(templates, partitions=4, parameters=parameters, seed=1)
        assert four.energy_per_recognition() > two.energy_per_recognition()

    def test_longest_row_unchanged(self, partitioned, templates):
        assert partitioned.longest_row_length() == templates.shape[1]
