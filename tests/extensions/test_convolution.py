"""Tests for the crossbar convolution engine extension."""

import numpy as np
import pytest

from repro.extensions.convolution import CrossbarConvolutionEngine


def make_kernels():
    """Four distinct non-negative 4x4 kernels (edge/blob detectors)."""
    horizontal = np.zeros((4, 4))
    horizontal[:2, :] = 1.0
    vertical = horizontal.T.copy()
    centre = np.zeros((4, 4))
    centre[1:3, 1:3] = 1.0
    uniform = np.full((4, 4), 0.5)
    return np.stack([horizontal, vertical, centre, uniform])


@pytest.fixture(scope="module")
def engine():
    return CrossbarConvolutionEngine(make_kernels(), bits=5, stride=2, seed=3)


class TestConstruction:
    def test_output_shape(self, engine):
        assert engine.output_shape((16, 16)) == (7, 7)
        assert engine.output_shape((8, 12)) == (3, 5)

    def test_image_smaller_than_kernel_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.output_shape((2, 2))

    def test_invalid_kernels_rejected(self):
        with pytest.raises(ValueError):
            CrossbarConvolutionEngine(np.zeros((1, 3, 3)) + 1.0)  # single kernel
        with pytest.raises(ValueError):
            CrossbarConvolutionEngine(-np.ones((2, 3, 3)))
        with pytest.raises(ValueError):
            CrossbarConvolutionEngine(np.ones((2, 3, 4)))
        with pytest.raises(ValueError):
            CrossbarConvolutionEngine(np.zeros((2, 3, 3)))


class TestConvolution:
    def test_feature_map_shapes_and_range(self, engine):
        rng = np.random.default_rng(0)
        image = rng.uniform(0, 1, (12, 12))
        result = engine.convolve(image)
        assert result.feature_maps.shape == (4, 5, 5)
        assert result.patches_evaluated == 25
        assert result.feature_maps.min() >= 0
        assert result.feature_maps.max() <= 31

    def test_oriented_kernels_respond_to_matching_edges(self, engine):
        # A horizontal bright band excites the horizontal kernel more than
        # the vertical one, and vice versa.
        image = np.zeros((12, 12))
        image[4:6, :] = 1.0
        result = engine.convolve(image)
        horizontal_response = result.feature_maps[0].max()
        vertical_response = result.feature_maps[1].max()
        assert horizontal_response >= vertical_response

        image_v = image.T.copy()
        result_v = engine.convolve(image_v)
        assert result_v.feature_maps[1].max() >= result_v.feature_maps[0].max()

    def test_agreement_with_reference_convolution_argmax(self, engine):
        rng = np.random.default_rng(1)
        image = rng.uniform(0, 1, (10, 10))
        hardware = engine.convolve(image).feature_maps
        reference = engine.reference_convolution(image)
        # Per output pixel, the kernel with the largest hardware DOM should
        # usually be the kernel with the largest exact correlation.
        hardware_argmax = hardware.argmax(axis=0)
        reference_argmax = reference.argmax(axis=0)
        agreement = np.mean(hardware_argmax == reference_argmax)
        assert agreement >= 0.6

    def test_uint8_image_supported(self, engine):
        image = (np.random.default_rng(2).uniform(0, 255, (8, 8))).astype(np.uint8)
        result = engine.convolve(image)
        assert result.feature_maps.shape[0] == 4


class TestEnergy:
    def test_energy_accounting_positive(self, engine):
        image = np.random.default_rng(3).uniform(0, 1, (8, 8))
        result = engine.convolve(image)
        assert result.energy > 0
        assert result.digital_energy > 0

    def test_spin_engine_beats_digital_baseline(self, engine):
        image = np.random.default_rng(4).uniform(0, 1, (8, 8))
        result = engine.convolve(image)
        # The paper's motivation for the CNN extension: the correlation
        # fabric is far more energy efficient than a digital MAC datapath.
        assert result.energy_ratio > 10
