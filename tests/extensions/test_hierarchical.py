"""Tests for the hierarchical (clustered) associative memory extension."""

import numpy as np
import pytest

from repro.core.config import DesignParameters
from repro.extensions.hierarchical import HierarchicalAssociativeMemory, kmeans_cluster


@pytest.fixture(scope="module")
def clustered_templates():
    """Templates forming four well-separated clusters of distinct members.

    Each cluster shares a dominant "block" of high-valued features (so the
    clusters are far apart and k-means recovers them), while the detailed
    values inside and outside the block differ from member to member (so
    the second-level module can still tell the members apart).
    """
    rng = np.random.default_rng(3)
    features, per_cluster, clusters = 32, 4, 4
    block = features // clusters
    # Fixed value multisets give every template exactly the same energy, so
    # the dot-product classifier is not biased towards brighter templates.
    block_values = np.arange(24, 32)
    off_values = np.tile(np.arange(0, 12), 2)
    columns = []
    for cluster in range(clusters):
        for _ in range(per_cluster):
            column = np.empty(features, dtype=np.int64)
            inside = slice(cluster * block, (cluster + 1) * block)
            column[inside] = rng.permutation(block_values)
            outside = np.ones(features, dtype=bool)
            outside[inside] = False
            column[outside] = rng.permutation(off_values)
            columns.append(column)
    matrix = np.stack(columns, axis=1)
    labels = list(range(matrix.shape[1]))
    return matrix, labels


@pytest.fixture(scope="module")
def hierarchy(clustered_templates):
    matrix, labels = clustered_templates
    parameters = DesignParameters(template_shape=(8, 4), num_templates=len(labels))
    return HierarchicalAssociativeMemory(
        matrix, labels=labels, clusters=4, parameters=parameters, seed=5
    )


class TestKmeans:
    def test_assignment_shapes(self):
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(20, 8))
        assignments, centroids = kmeans_cluster(vectors, 4, seed=1)
        assert assignments.shape == (20,)
        assert centroids.shape == (4, 8)
        assert set(np.unique(assignments)) <= set(range(4))

    def test_every_cluster_non_empty(self):
        rng = np.random.default_rng(1)
        vectors = rng.normal(size=(12, 4))
        assignments, _ = kmeans_cluster(vectors, 4, seed=2)
        assert len(np.unique(assignments)) == 4

    def test_well_separated_clusters_recovered(self):
        rng = np.random.default_rng(2)
        centres = np.array([[0.0, 0.0], [10.0, 10.0], [0.0, 10.0]])
        points = np.vstack([c + 0.1 * rng.normal(size=(10, 2)) for c in centres])
        assignments, _ = kmeans_cluster(points, 3, seed=3)
        groups = [set(assignments[i * 10 : (i + 1) * 10]) for i in range(3)]
        assert all(len(group) == 1 for group in groups)
        assert len(set.union(*groups)) == 3

    def test_too_many_clusters_rejected(self):
        with pytest.raises(ValueError):
            kmeans_cluster(np.zeros((3, 2)), 5)


class TestHierarchicalRecall:
    def test_recalls_own_templates(self, hierarchy, clustered_templates):
        matrix, labels = clustered_templates
        correct = 0
        for column in range(matrix.shape[1]):
            result = hierarchy.recognise(matrix[:, column])
            correct += result.winner == labels[column]
        assert correct >= matrix.shape[1] - 3

    def test_routing_matches_assignment(self, hierarchy, clustered_templates):
        matrix, labels = clustered_templates
        stats = hierarchy.evaluate(matrix.T, labels)
        assert stats["routing_accuracy"] >= 0.9
        assert stats["accuracy"] >= 0.75

    def test_result_exposes_both_levels(self, hierarchy, clustered_templates):
        matrix, _ = clustered_templates
        result = hierarchy.recognise(matrix[:, 0])
        assert 0 <= result.cluster < hierarchy.clusters
        assert result.first_level.codes.shape == (hierarchy.clusters,)
        assert isinstance(result.accepted, (bool, np.bool_))

    def test_cluster_sizes_sum_to_templates(self, hierarchy, clustered_templates):
        matrix, _ = clustered_templates
        assert hierarchy.cluster_sizes().sum() == matrix.shape[1]


class TestHierarchicalCost:
    def test_active_columns_fewer_than_flat(self, hierarchy, clustered_templates):
        matrix, _ = clustered_templates
        assert hierarchy.active_columns_per_recognition() < matrix.shape[1]

    def test_energy_saving_vs_flat(self, hierarchy):
        assert hierarchy.energy_per_recognition() < hierarchy.flat_energy_per_recognition()

    def test_invalid_construction(self, clustered_templates):
        matrix, labels = clustered_templates
        with pytest.raises(ValueError):
            HierarchicalAssociativeMemory(matrix, labels=labels, clusters=matrix.shape[1])
        with pytest.raises(ValueError):
            HierarchicalAssociativeMemory(matrix, labels=labels[:-1], clusters=2)
