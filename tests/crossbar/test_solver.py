"""Tests for the crossbar DC solvers (ideal and MNA with parasitics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crossbar.array import ResistiveCrossbar
from repro.crossbar.parasitics import WireParasitics, ideal_parasitics
from repro.crossbar.programming import TemplateProgrammer
from repro.crossbar.solver import CrossbarSolver
from repro.devices.dac import DtcsDac
from repro.devices.memristor import MemristorModel


def make_crossbar(rows=12, cols=4, seed=0, pitch_um=0.25, write_accuracy=0.0):
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 32, size=(rows, cols))
    programmer = TemplateProgrammer(
        memristor=MemristorModel(write_accuracy=write_accuracy, seed=seed)
    )
    parasitics = WireParasitics(cell_pitch_um=pitch_um)
    return ResistiveCrossbar.from_programmed(programmer.program(codes), parasitics=parasitics)


class TestIdealSolve:
    def test_ideal_matches_array_formula(self):
        crossbar = make_crossbar()
        solver = CrossbarSolver(crossbar, delta_v=30e-3)
        dac = np.random.default_rng(1).uniform(0, 2e-5, crossbar.rows)
        solution = solver.solve_ideal(dac)
        assert np.allclose(
            solution.column_currents, crossbar.column_currents(dac, 30e-3)
        )

    def test_supply_current_covers_column_and_dummy_currents(self):
        crossbar = make_crossbar()
        solver = CrossbarSolver(crossbar, delta_v=30e-3)
        dac = np.full(crossbar.rows, 1e-5)
        solution = solver.solve_ideal(dac)
        dummy_current = np.sum(
            crossbar.dummy_conductances * solution.row_voltages[:, 0]
        )
        assert solution.supply_current == pytest.approx(
            np.sum(solution.column_currents) + dummy_current, rel=1e-9
        )

    def test_static_power_property(self):
        crossbar = make_crossbar()
        solver = CrossbarSolver(crossbar, delta_v=30e-3)
        solution = solver.solve_ideal(np.full(crossbar.rows, 1e-5))
        assert solution.static_power == pytest.approx(solution.supply_current * 30e-3)

    def test_winner_and_margin(self):
        crossbar = make_crossbar()
        solver = CrossbarSolver(crossbar)
        solution = solver.solve_ideal(np.full(crossbar.rows, 1e-5))
        winner = solution.winner()
        assert winner == int(np.argmax(solution.column_currents))
        assert 0.0 <= solution.detection_margin() <= 1.0


class TestMnaSolve:
    def test_zero_wire_resistance_matches_ideal(self):
        crossbar = make_crossbar()
        # Replace parasitics with ideal wires.
        crossbar.parasitics = ideal_parasitics()
        solver = CrossbarSolver(crossbar, termination_resistance=0.0)
        dac = np.random.default_rng(2).uniform(0, 2e-5, crossbar.rows)
        mna = solver.solve(dac, include_parasitics=True)
        ideal = solver.solve_ideal(dac)
        assert np.allclose(mna.column_currents, ideal.column_currents)

    def test_small_parasitics_converge_to_ideal(self):
        crossbar = make_crossbar(pitch_um=1e-4)
        solver = CrossbarSolver(crossbar, termination_resistance=1e-3)
        dac = np.random.default_rng(3).uniform(0, 2e-5, crossbar.rows)
        mna = solver.solve(dac)
        ideal = solver.solve_ideal(dac)
        assert np.allclose(mna.column_currents, ideal.column_currents, rtol=1e-3)

    def test_parasitics_reduce_column_currents(self):
        crossbar = make_crossbar(pitch_um=1.0)
        solver = CrossbarSolver(crossbar, termination_resistance=50.0)
        dac = np.full(crossbar.rows, 2e-5)
        with_parasitics = solver.solve(dac).column_currents
        without = solver.solve_ideal(dac).column_currents
        assert np.all(with_parasitics < without)

    def test_larger_pitch_means_more_degradation(self):
        dac_value = 2e-5
        small = make_crossbar(pitch_um=0.1)
        large = make_crossbar(pitch_um=2.0)
        current_small = CrossbarSolver(small).solve(np.full(small.rows, dac_value)).column_currents
        current_large = CrossbarSolver(large).solve(np.full(large.rows, dac_value)).column_currents
        assert np.sum(current_large) < np.sum(current_small)

    def test_kcl_supply_balances_output_plus_losses(self):
        crossbar = make_crossbar()
        solver = CrossbarSolver(crossbar, termination_resistance=20.0)
        dac = np.full(crossbar.rows, 1e-5)
        solution = solver.solve(dac)
        # All supply current must leave through the column terminations or
        # the dummy conductances (both tied to the clamp rail).
        dummy_current = np.sum(crossbar.dummy_conductances * solution.row_voltages[:, 0])
        total_out = np.sum(solution.column_currents) + dummy_current
        assert solution.supply_current == pytest.approx(total_out, rel=1e-6)

    def test_row_voltages_bounded_by_delta_v(self):
        crossbar = make_crossbar()
        solver = CrossbarSolver(crossbar, delta_v=30e-3)
        solution = solver.solve(np.full(crossbar.rows, 5e-5))
        assert np.all(solution.row_voltages >= -1e-12)
        assert np.all(solution.row_voltages <= 30e-3 + 1e-12)

    def test_column_voltages_below_row_voltages_on_average(self):
        crossbar = make_crossbar()
        solver = CrossbarSolver(crossbar)
        solution = solver.solve(np.full(crossbar.rows, 1e-5))
        assert solution.column_voltages.mean() < solution.row_voltages.mean()

    def test_include_parasitics_false_uses_ideal(self):
        crossbar = make_crossbar(pitch_um=1.0)
        solver = CrossbarSolver(crossbar)
        dac = np.full(crossbar.rows, 1e-5)
        assert np.allclose(
            solver.solve(dac, include_parasitics=False).column_currents,
            solver.solve_ideal(dac).column_currents,
        )

    def test_negative_dac_rejected(self):
        crossbar = make_crossbar()
        solver = CrossbarSolver(crossbar)
        with pytest.raises(ValueError):
            solver.solve(-np.ones(crossbar.rows))

    def test_wrong_shape_rejected(self):
        crossbar = make_crossbar()
        solver = CrossbarSolver(crossbar)
        with pytest.raises(ValueError):
            solver.solve(np.ones(crossbar.rows + 1))

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_property_mna_currents_never_exceed_ideal_total(self, seed):
        crossbar = make_crossbar(seed=seed, pitch_um=0.5)
        solver = CrossbarSolver(crossbar)
        dac = np.random.default_rng(seed).uniform(0, 2e-5, crossbar.rows)
        mna_total = np.sum(solver.solve(dac).column_currents)
        ideal_total = np.sum(solver.solve_ideal(dac).column_currents)
        assert mna_total <= ideal_total * (1.0 + 1e-9)

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_property_all_output_currents_non_negative(self, seed):
        crossbar = make_crossbar(seed=seed)
        solver = CrossbarSolver(crossbar)
        dac = np.random.default_rng(seed + 1).uniform(0, 3e-5, crossbar.rows)
        solution = solver.solve(dac)
        assert np.all(solution.column_currents >= -1e-12)


class TestSolveForCodes:
    def test_codes_drive_through_dac(self):
        crossbar = make_crossbar()
        solver = CrossbarSolver(crossbar)
        dac = DtcsDac(bits=5, unit_conductance=5e-7)
        codes = np.random.default_rng(4).integers(0, 32, crossbar.rows)
        solution = solver.solve_for_codes(codes, dac)
        manual = solver.solve(dac.conductance_array(codes))
        assert np.allclose(solution.column_currents, manual.column_currents)

    def test_zero_codes_give_zero_output(self):
        crossbar = make_crossbar()
        solver = CrossbarSolver(crossbar)
        dac = DtcsDac(bits=5, unit_conductance=5e-7)
        solution = solver.solve_for_codes(np.zeros(crossbar.rows, dtype=int), dac)
        assert np.allclose(solution.column_currents, 0.0, atol=1e-15)
