"""Tests for template programming and row equalisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crossbar.programming import TemplateProgrammer
from repro.devices.memristor import MemristorModel


def make_codes(rows=16, cols=5, bits=5, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**bits, size=(rows, cols))


class TestCodeMapping:
    def test_codes_to_values_range(self):
        programmer = TemplateProgrammer(bits=5)
        values = programmer.codes_to_values(np.array([0, 31]))
        assert values[0] == pytest.approx(0.0)
        assert values[1] == pytest.approx(1.0)

    def test_out_of_range_codes_rejected(self):
        programmer = TemplateProgrammer(bits=5)
        with pytest.raises(ValueError):
            programmer.codes_to_values(np.array([32]))

    def test_target_conductances_within_device_range(self):
        programmer = TemplateProgrammer()
        targets = programmer.values_to_target_conductances(np.linspace(0, 1, 11))
        assert targets.min() >= programmer.memristor.g_min - 1e-15
        assert targets.max() <= programmer.memristor.g_max + 1e-15


class TestProgramming:
    def test_programmed_shape_matches_input(self):
        codes = make_codes()
        programmed = TemplateProgrammer().program(codes)
        assert programmed.conductances.shape == codes.shape
        assert programmed.rows == codes.shape[0]
        assert programmed.columns == codes.shape[1]

    def test_row_totals_equalised(self):
        codes = make_codes(rows=32, cols=8)
        programmed = TemplateProgrammer().program(codes)
        totals = programmed.conductances.sum(axis=1) + programmed.dummy_conductances
        assert np.allclose(totals, programmed.row_total_conductance)

    def test_dummy_conductances_non_negative(self):
        codes = make_codes(rows=32, cols=8, seed=3)
        programmed = TemplateProgrammer().program(codes)
        assert np.all(programmed.dummy_conductances >= 0)

    def test_headroom_gives_strictly_positive_dummies(self):
        codes = make_codes(rows=32, cols=8, seed=4)
        programmed = TemplateProgrammer(dummy_headroom=0.05).program(codes)
        assert np.all(programmed.dummy_conductances > 0)

    def test_exact_write_when_accuracy_zero(self):
        codes = make_codes()
        memristor = MemristorModel(write_accuracy=0.0)
        programmed = TemplateProgrammer(memristor=memristor).program(codes)
        assert np.allclose(programmed.conductances, programmed.target_conductances)

    def test_write_error_within_expected_band(self):
        codes = make_codes(rows=64, cols=16, seed=6)
        memristor = MemristorModel(write_accuracy=0.03, seed=1)
        programmed = TemplateProgrammer(memristor=memristor).program(codes)
        errors = programmed.write_error()
        assert np.std(errors) < 0.05
        assert np.max(np.abs(errors)) < 0.2

    def test_non_2d_input_rejected(self):
        with pytest.raises(ValueError):
            TemplateProgrammer().program(np.array([1, 2, 3]))

    def test_program_values_quantises(self):
        values = np.random.default_rng(0).uniform(0, 1, size=(16, 4))
        memristor = MemristorModel(write_accuracy=0.0)
        programmer = TemplateProgrammer(memristor=memristor, bits=5)
        programmed = programmer.program_values(values)
        # Targets must lie on the 32-level conductance grid.
        levels = programmer.values_to_target_conductances(np.arange(32) / 31.0)
        for target in programmed.target_conductances.ravel():
            assert np.min(np.abs(levels - target)) < 1e-12

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_property_row_equalisation_invariant(self, seed):
        codes = make_codes(rows=12, cols=6, seed=seed)
        programmed = TemplateProgrammer().program(codes)
        totals = programmed.conductances.sum(axis=1) + programmed.dummy_conductances
        assert np.allclose(totals, totals[0])


class TestParallelCellsAndCost:
    def test_parallel_cells_increase_conductance_scale(self):
        codes = make_codes()
        single = TemplateProgrammer(parallel_cells=1, memristor=MemristorModel(write_accuracy=0)).program(codes)
        double = TemplateProgrammer(parallel_cells=2, memristor=MemristorModel(write_accuracy=0)).program(codes)
        assert np.allclose(double.conductances, 2 * single.conductances)

    def test_parallel_cells_improve_precision(self):
        single = TemplateProgrammer(parallel_cells=1)
        quad = TemplateProgrammer(parallel_cells=4)
        assert quad.effective_precision_bits() > single.effective_precision_bits()

    def test_write_energy_scales_with_array_and_cells(self):
        programmer = TemplateProgrammer(parallel_cells=2)
        assert programmer.write_energy(10, 10) == pytest.approx(
            100 * 2 * programmer.memristor.write_energy()
        )

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            TemplateProgrammer(parallel_cells=0)
        with pytest.raises(ValueError):
            TemplateProgrammer(dummy_headroom=-0.1)
