"""Tests for the resistive crossbar array model."""

import numpy as np
import pytest

from repro.crossbar.array import ResistiveCrossbar
from repro.crossbar.programming import TemplateProgrammer
from repro.devices.memristor import MemristorModel


def make_crossbar(rows=16, cols=5, seed=0, write_accuracy=0.0):
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 32, size=(rows, cols))
    programmer = TemplateProgrammer(memristor=MemristorModel(write_accuracy=write_accuracy, seed=seed))
    return ResistiveCrossbar.from_programmed(programmer.program(codes)), codes


class TestConstruction:
    def test_from_template_codes(self):
        codes = np.random.default_rng(1).integers(0, 32, size=(8, 3))
        crossbar = ResistiveCrossbar.from_template_codes(codes)
        assert crossbar.rows == 8
        assert crossbar.columns == 3

    def test_rejects_non_positive_conductance(self):
        with pytest.raises(ValueError):
            ResistiveCrossbar(np.array([[1e-4, 0.0], [1e-4, 1e-4]]))

    def test_rejects_negative_dummies(self):
        with pytest.raises(ValueError):
            ResistiveCrossbar(np.full((2, 2), 1e-4), dummy_conductances=np.array([-1e-5, 0.0]))

    def test_rejects_wrong_dummy_shape(self):
        with pytest.raises(ValueError):
            ResistiveCrossbar(np.full((2, 2), 1e-4), dummy_conductances=np.zeros(3))

    def test_conductances_returned_as_copy(self):
        crossbar, _ = make_crossbar()
        matrix = crossbar.conductances
        matrix[0, 0] = 99.0
        assert crossbar.conductances[0, 0] != 99.0


class TestRowTotals:
    def test_row_totals_equalised_after_programming(self):
        crossbar, _ = make_crossbar()
        totals = crossbar.row_total_conductances()
        assert np.allclose(totals, crossbar.nominal_row_conductance())

    def test_column_totals_positive(self):
        crossbar, _ = make_crossbar()
        assert np.all(crossbar.column_total_conductances() > 0)


class TestIdealEvaluation:
    def test_row_voltage_current_divider(self):
        crossbar, _ = make_crossbar()
        dac = np.full(crossbar.rows, 1e-5)
        delta_v = 30e-3
        voltages = crossbar.row_voltages(dac, delta_v)
        totals = crossbar.row_total_conductances()
        expected = delta_v * dac / (dac + totals)
        assert np.allclose(voltages, expected)

    def test_column_currents_match_paper_formula(self):
        crossbar, _ = make_crossbar()
        rng = np.random.default_rng(2)
        dac = rng.uniform(0, 2e-5, crossbar.rows)
        delta_v = 30e-3
        currents = crossbar.column_currents(dac, delta_v)
        conductances = crossbar.conductances
        totals = crossbar.row_total_conductances()
        expected = np.zeros(crossbar.columns)
        for j in range(crossbar.columns):
            expected[j] = np.sum(
                delta_v * dac * conductances[:, j] / (dac + totals)
            )
        assert np.allclose(currents, expected)

    def test_zero_input_gives_zero_current(self):
        crossbar, _ = make_crossbar()
        currents = crossbar.column_currents(np.zeros(crossbar.rows), 30e-3)
        assert np.allclose(currents, 0.0)

    def test_currents_scale_linearly_with_delta_v(self):
        crossbar, _ = make_crossbar()
        dac = np.full(crossbar.rows, 1e-5)
        a = crossbar.column_currents(dac, 30e-3)
        b = crossbar.column_currents(dac, 60e-3)
        assert np.allclose(b, 2 * a)

    def test_ideal_dot_product_matches_matrix_product(self):
        crossbar, _ = make_crossbar()
        values = np.random.default_rng(3).uniform(0, 1, crossbar.rows)
        assert np.allclose(
            crossbar.ideal_dot_product(values), values @ crossbar.conductances
        )

    def test_row_current_distribution_sums_to_input(self):
        crossbar, _ = make_crossbar()
        row_currents = np.random.default_rng(4).uniform(0, 1e-5, crossbar.rows)
        column_currents = crossbar.column_currents_from_row_currents(row_currents)
        # The columns receive the input current minus the share into the dummies.
        dummy_share = np.sum(
            row_currents * crossbar.dummy_conductances / crossbar.row_total_conductances()
        )
        assert np.sum(column_currents) + dummy_share == pytest.approx(np.sum(row_currents))

    def test_wrong_shapes_rejected(self):
        crossbar, _ = make_crossbar()
        with pytest.raises(ValueError):
            crossbar.column_currents(np.zeros(crossbar.rows + 1), 30e-3)
        with pytest.raises(ValueError):
            crossbar.row_voltages(-np.ones(crossbar.rows), 30e-3)


class TestHigherTemplateValuesGiveHigherCorrelation:
    def test_matched_template_wins(self):
        # Store two orthogonal-ish patterns; driving with a pattern must
        # produce the largest current on its own column.
        codes = np.zeros((16, 2), dtype=int)
        codes[:8, 0] = 31
        codes[8:, 1] = 31
        memristor = MemristorModel(write_accuracy=0.0)
        crossbar = ResistiveCrossbar.from_programmed(
            TemplateProgrammer(memristor=memristor).program(codes)
        )
        dac = np.zeros(16)
        dac[:8] = 1e-5
        currents = crossbar.column_currents(dac, 30e-3)
        assert currents[0] > currents[1]


class TestPowerBookkeeping:
    def test_static_power_is_current_times_delta_v(self):
        crossbar, _ = make_crossbar()
        dac = np.full(crossbar.rows, 1e-5)
        delta_v = 30e-3
        assert crossbar.static_power(dac, delta_v) == pytest.approx(
            crossbar.static_current(dac, delta_v) * delta_v
        )

    def test_static_current_increases_with_input(self):
        crossbar, _ = make_crossbar()
        low = crossbar.static_current(np.full(crossbar.rows, 1e-6), 30e-3)
        high = crossbar.static_current(np.full(crossbar.rows, 1e-5), 30e-3)
        assert high > low

    def test_total_wire_capacitance_positive(self):
        crossbar, _ = make_crossbar()
        assert crossbar.total_wire_capacitance() > 0
