"""Tests for the crossbar wire-parasitics model."""

import pytest

from repro.crossbar.parasitics import WireParasitics, ideal_parasitics


class TestSegments:
    def test_table2_defaults(self):
        parasitics = WireParasitics()
        assert parasitics.resistance_per_um == pytest.approx(1.0)
        assert parasitics.capacitance_per_um == pytest.approx(0.4e-15)

    def test_segment_values_scale_with_pitch(self):
        parasitics = WireParasitics(cell_pitch_um=0.5)
        assert parasitics.segment_resistance == pytest.approx(0.5)
        assert parasitics.segment_capacitance == pytest.approx(0.2e-15)

    def test_invalid_pitch_rejected(self):
        with pytest.raises(ValueError):
            WireParasitics(cell_pitch_um=0.0)


class TestLineTotals:
    def test_row_and_column_resistance(self):
        parasitics = WireParasitics(cell_pitch_um=1.0)
        assert parasitics.row_resistance(40) == pytest.approx(40.0)
        assert parasitics.column_resistance(128) == pytest.approx(128.0)

    def test_row_and_column_capacitance(self):
        parasitics = WireParasitics(cell_pitch_um=1.0)
        assert parasitics.row_capacitance(40) == pytest.approx(16e-15)
        assert parasitics.column_capacitance(128) == pytest.approx(51.2e-15)

    def test_array_capacitance_sums_all_bars(self):
        parasitics = WireParasitics(cell_pitch_um=1.0)
        expected = 128 * parasitics.row_capacitance(40) + 40 * parasitics.column_capacitance(128)
        assert parasitics.array_capacitance(128, 40) == pytest.approx(expected)

    def test_invalid_counts_rejected(self):
        parasitics = WireParasitics()
        with pytest.raises(ValueError):
            parasitics.row_resistance(0)
        with pytest.raises(ValueError):
            parasitics.column_capacitance(0)


class TestVariants:
    def test_scaled_pitch(self):
        parasitics = WireParasitics(cell_pitch_um=1.0)
        half = parasitics.scaled(0.5)
        assert half.segment_resistance == pytest.approx(0.5)

    def test_ideal_parasitics_have_zero_resistance(self):
        ideal = ideal_parasitics()
        assert ideal.segment_resistance == 0.0
        assert ideal.row_resistance(100) == 0.0
