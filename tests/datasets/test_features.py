"""Tests for the Fig. 2 feature-reduction flow."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.features import (
    FeatureExtractor,
    build_templates,
    downsample_image,
    normalize_image,
    quantize_feature,
    templates_to_matrix,
)


class TestNormalize:
    def test_output_mean_matches_target(self):
        image = np.random.default_rng(0).uniform(20, 200, (32, 24))
        normalised = normalize_image(image, target_mean=0.5)
        assert normalised.mean() == pytest.approx(0.5, abs=0.05)

    def test_uint8_input_supported(self):
        image = (np.random.default_rng(1).uniform(0, 255, (32, 24))).astype(np.uint8)
        normalised = normalize_image(image)
        assert 0.0 <= normalised.min() and normalised.max() <= 1.0

    def test_illumination_invariance(self):
        # Global illumination scaling (without clipping) is removed by the
        # mean normalisation.
        image = np.random.default_rng(2).uniform(0.1, 0.7, (32, 24))
        bright = image * 1.3
        assert np.allclose(normalize_image(image), normalize_image(bright), atol=1e-9)

    def test_zero_image_maps_to_zero(self):
        assert np.all(normalize_image(np.zeros((8, 8))) == 0.0)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            normalize_image(np.zeros((2, 2, 2)))


class TestDownsample:
    def test_shape_reduction(self):
        image = np.random.default_rng(3).uniform(0, 1, (128, 96))
        reduced = downsample_image(image, (16, 8))
        assert reduced.shape == (16, 8)

    def test_block_average_of_constant_blocks(self):
        image = np.zeros((4, 4))
        image[:2, :2] = 1.0
        reduced = downsample_image(image, (2, 2))
        assert reduced[0, 0] == pytest.approx(1.0)
        assert reduced[1, 1] == pytest.approx(0.0)

    def test_mean_preserved(self):
        image = np.random.default_rng(4).uniform(0, 1, (64, 48))
        reduced = downsample_image(image, (16, 8))
        assert reduced.mean() == pytest.approx(image.mean())

    def test_indivisible_shape_rejected(self):
        with pytest.raises(ValueError):
            downsample_image(np.zeros((10, 10)), (3, 3))


class TestQuantize:
    def test_codes_in_range(self):
        codes = quantize_feature(np.linspace(0, 1, 100), 5)
        assert codes.min() == 0
        assert codes.max() == 31


class TestFeatureExtractor:
    def test_feature_length_128_for_paper_shape(self):
        extractor = FeatureExtractor(feature_shape=(16, 8), bits=5)
        assert extractor.feature_length == 128
        assert extractor.max_code == 31

    def test_extract_codes_shape_and_range(self):
        extractor = FeatureExtractor(feature_shape=(16, 8), bits=5)
        image = np.random.default_rng(5).integers(0, 256, (128, 96)).astype(np.uint8)
        codes = extractor.extract_codes(image)
        assert codes.shape == (128,)
        assert codes.min() >= 0 and codes.max() <= 31

    def test_extract_many_stacks(self):
        extractor = FeatureExtractor(feature_shape=(8, 4), bits=5)
        images = np.random.default_rng(6).integers(0, 256, (3, 64, 48)).astype(np.uint8)
        codes = extractor.extract_many(images)
        assert codes.shape == (3, 32)

    def test_invalid_inputs_rejected(self):
        extractor = FeatureExtractor()
        with pytest.raises(ValueError):
            extractor.extract_many(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            FeatureExtractor(target_mean=0.0)

    @given(bits=st.integers(min_value=2, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_property_codes_bounded_by_bits(self, bits):
        extractor = FeatureExtractor(feature_shape=(8, 4), bits=bits)
        image = np.random.default_rng(bits).integers(0, 256, (64, 48)).astype(np.uint8)
        codes = extractor.extract_codes(image)
        assert codes.max() <= 2**bits - 1


class TestTemplates:
    def _corpus(self):
        rng = np.random.default_rng(7)
        images = rng.integers(0, 256, (12, 64, 48)).astype(np.uint8)
        labels = np.repeat(np.arange(3), 4)
        return images, labels

    def test_one_template_per_class(self):
        images, labels = self._corpus()
        extractor = FeatureExtractor(feature_shape=(8, 4), bits=5)
        templates = build_templates(images, labels, extractor)
        assert set(templates.keys()) == {0, 1, 2}
        for template in templates.values():
            assert template.shape == (32,)
            assert template.min() >= 0 and template.max() <= 31

    def test_template_is_average_of_class(self):
        # Build a corpus where a class has identical images; its template
        # must equal that image's reduced codes.
        rng = np.random.default_rng(8)
        base = rng.integers(0, 256, (64, 48)).astype(np.uint8)
        images = np.stack([base, base, base])
        labels = np.zeros(3, dtype=int)
        extractor = FeatureExtractor(feature_shape=(8, 4), bits=5)
        templates = build_templates(images, labels, extractor)
        assert np.array_equal(templates[0], extractor.extract_codes(base))

    def test_templates_to_matrix_orientation(self):
        images, labels = self._corpus()
        extractor = FeatureExtractor(feature_shape=(8, 4), bits=5)
        templates = build_templates(images, labels, extractor)
        matrix, matrix_labels = templates_to_matrix(templates)
        assert matrix.shape == (32, 3)
        assert list(matrix_labels) == [0, 1, 2]
        assert np.array_equal(matrix[:, 1], templates[1])

    def test_mismatched_labels_rejected(self):
        images, labels = self._corpus()
        with pytest.raises(ValueError):
            build_templates(images, labels[:-1])
