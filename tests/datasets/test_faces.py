"""Tests for the synthetic face-image generator."""

import numpy as np
import pytest

from repro.datasets.faces import SyntheticFaceGenerator


@pytest.fixture(scope="module")
def generator():
    return SyntheticFaceGenerator(subjects=5, images_per_subject=3, image_shape=(64, 48), seed=1)


class TestPrototypes:
    def test_prototype_shape_and_range(self, generator):
        prototype = generator.subject_prototype(0)
        assert prototype.shape == (64, 48)
        assert prototype.min() >= 0.0
        assert prototype.max() <= 1.0

    def test_prototypes_differ_between_subjects(self, generator):
        a = generator.subject_prototype(0)
        b = generator.subject_prototype(1)
        assert np.mean(np.abs(a - b)) > 0.02

    def test_prototype_deterministic(self):
        a = SyntheticFaceGenerator(subjects=3, seed=9, image_shape=(64, 48)).subject_prototype(2)
        b = SyntheticFaceGenerator(subjects=3, seed=9, image_shape=(64, 48)).subject_prototype(2)
        assert np.allclose(a, b)

    def test_invalid_subject_rejected(self, generator):
        with pytest.raises(ValueError):
            generator.subject_prototype(99)


class TestSamples:
    def test_sample_is_uint8_image(self, generator):
        sample = generator.sample(0, 0)
        assert sample.dtype == np.uint8
        assert sample.shape == (64, 48)

    def test_samples_of_same_subject_differ(self, generator):
        a = generator.sample(0, 0)
        b = generator.sample(0, 1)
        assert not np.array_equal(a, b)

    def test_sample_deterministic_for_same_index(self, generator):
        a = generator.sample(1, 2)
        b = generator.sample(1, 2)
        assert np.array_equal(a, b)

    def test_within_class_variation_smaller_than_between_class(self, generator):
        same_a = generator.sample(0, 0).astype(float)
        same_b = generator.sample(0, 1).astype(float)
        other = generator.sample(1, 0).astype(float)
        within = np.mean(np.abs(same_a - same_b))
        between = np.mean(np.abs(same_a - other))
        assert between > within

    def test_invalid_sample_index_rejected(self, generator):
        with pytest.raises(ValueError):
            generator.sample(0, -1)


class TestCorpus:
    def test_generate_shapes_and_labels(self, generator):
        images, labels = generator.generate()
        assert images.shape == (15, 64, 48)
        assert labels.shape == (15,)
        assert set(labels.tolist()) == {0, 1, 2, 3, 4}
        assert np.all(np.bincount(labels) == 3)

    def test_generate_deterministic(self):
        gen_a = SyntheticFaceGenerator(subjects=2, images_per_subject=2, image_shape=(64, 48), seed=4)
        gen_b = SyntheticFaceGenerator(subjects=2, images_per_subject=2, image_shape=(64, 48), seed=4)
        images_a, _ = gen_a.generate()
        images_b, _ = gen_b.generate()
        assert np.array_equal(images_a, images_b)

    def test_default_shape_matches_paper(self):
        generator = SyntheticFaceGenerator(subjects=1, images_per_subject=1, seed=0)
        images, _ = generator.generate()
        assert images.shape == (1, 128, 96)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            SyntheticFaceGenerator(subjects=0)
        with pytest.raises(ValueError):
            SyntheticFaceGenerator(noise_sigma=-0.1)
