"""Tests for the dataset container and default loader."""

import numpy as np
import pytest

from repro.datasets.attlike import FaceDataset, load_default_dataset


@pytest.fixture(scope="module")
def dataset():
    return load_default_dataset(subjects=4, images_per_subject=5, image_shape=(64, 48), seed=2)


class TestContainer:
    def test_basic_properties(self, dataset):
        assert dataset.size == 20
        assert dataset.image_shape == (64, 48)
        assert dataset.num_classes == 4
        assert dataset.images_per_class() == 5

    def test_test_views_cover_everything(self, dataset):
        assert dataset.test_images.shape[0] == dataset.size
        assert np.array_equal(dataset.test_labels, dataset.labels)

    def test_class_images_filtered(self, dataset):
        images = dataset.class_images(2)
        assert images.shape[0] == 5

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            FaceDataset(images=np.zeros((3, 4)), labels=np.zeros(3))
        with pytest.raises(ValueError):
            FaceDataset(images=np.zeros((3, 4, 4)), labels=np.zeros(2))


class TestSplits:
    def test_split_is_per_class_and_disjoint(self, dataset):
        train, test = dataset.split(train_fraction=0.6, seed=1)
        assert train.size + test.size == dataset.size
        assert train.num_classes == dataset.num_classes
        assert test.num_classes == dataset.num_classes

    def test_split_reproducible(self, dataset):
        a_train, _ = dataset.split(seed=5)
        b_train, _ = dataset.split(seed=5)
        assert np.array_equal(a_train.images, b_train.images)

    def test_invalid_fraction_rejected(self, dataset):
        with pytest.raises(ValueError):
            dataset.split(train_fraction=1.0)

    def test_subset_limits_classes(self, dataset):
        subset = dataset.subset(2)
        assert subset.num_classes == 2
        assert subset.size == 10


class TestDefaultLoader:
    def test_default_dimensions_match_paper(self):
        dataset = load_default_dataset(subjects=2, images_per_subject=2)
        assert dataset.image_shape == (128, 96)

    def test_loader_deterministic_for_seed(self):
        a = load_default_dataset(subjects=2, images_per_subject=2, image_shape=(64, 48), seed=3)
        b = load_default_dataset(subjects=2, images_per_subject=2, image_shape=(64, 48), seed=3)
        assert np.array_equal(a.images, b.images)

    def test_loader_differs_across_seeds(self):
        a = load_default_dataset(subjects=2, images_per_subject=2, image_shape=(64, 48), seed=3)
        b = load_default_dataset(subjects=2, images_per_subject=2, image_shape=(64, 48), seed=4)
        assert not np.array_equal(a.images, b.images)
