"""Tests for the dynamic CMOS sense latch."""

import numpy as np
import pytest

from repro.devices.latch import DynamicCmosLatch


class TestSense:
    def test_lower_device_resistance_reads_true(self):
        latch = DynamicCmosLatch(offset_sigma_ohm=0.0)
        assert latch.sense(5e3, 10e3) is True

    def test_higher_device_resistance_reads_false(self):
        latch = DynamicCmosLatch(offset_sigma_ohm=0.0)
        assert latch.sense(15e3, 10e3) is False

    def test_offset_can_flip_marginal_decision(self):
        latch = DynamicCmosLatch(offset_sigma_ohm=500.0)
        rng = np.random.default_rng(0)
        outcomes = {latch.sense(10e3 - 100.0, 10e3, rng) for _ in range(200)}
        assert outcomes == {True, False}

    def test_large_margin_immune_to_offset(self):
        latch = DynamicCmosLatch(offset_sigma_ohm=200.0)
        rng = np.random.default_rng(1)
        assert all(latch.sense(5e3, 10e3, rng) for _ in range(200))

    def test_invalid_resistances_rejected(self):
        latch = DynamicCmosLatch()
        with pytest.raises(ValueError):
            latch.sense(-1.0, 10e3)


class TestEnergyAndTiming:
    def test_sense_energy_is_cv2(self):
        latch = DynamicCmosLatch(supply_voltage=1.0, node_capacitance=2e-15)
        assert latch.sense_energy() == pytest.approx(2e-15)

    def test_sense_energy_scales_with_vdd_squared(self):
        low = DynamicCmosLatch(supply_voltage=0.8)
        high = DynamicCmosLatch(supply_voltage=1.0)
        assert high.sense_energy() / low.sense_energy() == pytest.approx(1.0 / 0.64)

    def test_discharge_time_scales_with_resistance(self):
        latch = DynamicCmosLatch()
        assert latch.discharge_time(15e3) == pytest.approx(3 * latch.discharge_time(5e3))

    def test_error_probability_decreases_with_margin(self):
        latch = DynamicCmosLatch(offset_sigma_ohm=200.0)
        assert latch.error_probability(5e3) < latch.error_probability(500.0)
        assert latch.error_probability(5e3) < 1e-10

    def test_error_probability_zero_for_ideal_latch(self):
        latch = DynamicCmosLatch(offset_sigma_ohm=0.0)
        assert latch.error_probability(100.0) == 0.0

    def test_error_probability_matches_gaussian_tail(self):
        latch = DynamicCmosLatch(offset_sigma_ohm=1000.0)
        # One-sigma margin -> ~15.9 % error probability.
        assert latch.error_probability(1000.0) == pytest.approx(0.1587, abs=0.01)
