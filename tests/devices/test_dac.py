"""Tests for the binary-weighted deep-triode current-source DAC (Fig. 8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.dac import DtcsDac


class TestCodeToConductance:
    def test_zero_code_zero_conductance(self):
        dac = DtcsDac(bits=5, unit_conductance=1e-5)
        assert dac.conductance(0) == 0.0

    def test_full_code_sums_all_bits(self):
        dac = DtcsDac(bits=5, unit_conductance=1e-5)
        assert dac.conductance(31) == pytest.approx(31e-5)

    def test_binary_weighting(self):
        dac = DtcsDac(bits=4, unit_conductance=2e-6)
        assert dac.conductance(1) == pytest.approx(2e-6)
        assert dac.conductance(2) == pytest.approx(4e-6)
        assert dac.conductance(4) == pytest.approx(8e-6)
        assert dac.conductance(8) == pytest.approx(16e-6)

    def test_conductance_array_matches_scalar(self):
        dac = DtcsDac(bits=5, unit_conductance=3e-6, mismatch_sigma=0.05, seed=1)
        codes = np.arange(32)
        array = dac.conductance_array(codes)
        scalars = np.array([dac.conductance(int(code)) for code in codes])
        assert np.allclose(array, scalars)

    def test_out_of_range_code_rejected(self):
        dac = DtcsDac(bits=3)
        with pytest.raises(ValueError):
            dac.conductance(8)
        with pytest.raises(ValueError):
            dac.conductance_array(np.array([-1]))

    @given(
        code_a=st.integers(min_value=0, max_value=31),
        code_b=st.integers(min_value=0, max_value=31),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_conductance_monotonic_in_code(self, code_a, code_b):
        dac = DtcsDac(bits=5, unit_conductance=1e-5)
        if code_a <= code_b:
            assert dac.conductance(code_a) <= dac.conductance(code_b) + 1e-18


class TestLoadedOutput:
    def test_large_load_recovers_linear_characteristic(self):
        dac = DtcsDac(bits=5, unit_conductance=1e-5, delta_v=30e-3)
        current = dac.output_current(31, load_conductance=1.0)
        assert current == pytest.approx(dac.unloaded_full_scale_current(), rel=1e-3)

    def test_small_load_compresses_output(self):
        dac = DtcsDac(bits=5, unit_conductance=1e-5, delta_v=30e-3)
        weak_load = dac.output_current(31, load_conductance=1e-4)
        strong_load = dac.output_current(31, load_conductance=1.0)
        assert weak_load < strong_load

    def test_current_divider_formula(self):
        dac = DtcsDac(bits=4, unit_conductance=1e-5, delta_v=30e-3)
        g_t = dac.conductance(15)
        g_l = 2e-4
        expected = 30e-3 * g_t * g_l / (g_t + g_l)
        assert dac.output_current(15, g_l) == pytest.approx(expected)

    def test_output_array_matches_scalar(self):
        dac = DtcsDac(bits=5, unit_conductance=1e-5)
        codes = np.arange(32)
        array = dac.output_current_array(codes, 5e-4)
        scalars = [dac.output_current(int(c), 5e-4) for c in codes]
        assert np.allclose(array, scalars)

    def test_invalid_load_rejected(self):
        dac = DtcsDac()
        with pytest.raises(ValueError):
            dac.output_current(1, 0.0)


class TestNonlinearity:
    def test_ideal_load_has_negligible_inl(self):
        dac = DtcsDac(bits=5, unit_conductance=1e-5)
        characteristics = dac.characteristics(load_conductance=10.0)
        assert characteristics.max_integral_nonlinearity() < 0.01

    def test_weak_load_increases_nonlinearity(self):
        # Fig. 8b: a low G_TS (high memristor resistance) bends the DAC
        # characteristic.
        dac = DtcsDac(bits=5, unit_conductance=1e-5)
        strong = dac.characteristics(load_conductance=1e-2)
        weak = dac.characteristics(load_conductance=5e-4)
        assert weak.max_integral_nonlinearity() > strong.max_integral_nonlinearity()
        assert weak.relative_nonlinearity() > strong.relative_nonlinearity()

    def test_nonlinearity_monotonic_in_load(self):
        dac = DtcsDac(bits=5, unit_conductance=1e-5)
        loads = [3e-4, 1e-3, 3e-3, 1e-2, 1e-1]
        inl = [dac.characteristics(g).max_integral_nonlinearity() for g in loads]
        assert all(a >= b - 1e-9 for a, b in zip(inl, inl[1:]))

    def test_characteristics_full_scale_at_top_code(self):
        dac = DtcsDac(bits=4, unit_conductance=1e-5)
        characteristics = dac.characteristics(load_conductance=1e-3)
        assert characteristics.currents[-1] == characteristics.full_scale_current
        assert characteristics.codes[-1] == 15

    def test_dnl_bounded_for_ideal_dac(self):
        dac = DtcsDac(bits=5, unit_conductance=1e-5)
        characteristics = dac.characteristics(load_conductance=10.0)
        assert np.max(np.abs(characteristics.differential_nonlinearity())) < 0.01


class TestSizing:
    def test_for_full_scale_current_unloaded(self):
        dac = DtcsDac.for_full_scale_current(10e-6, bits=5, delta_v=30e-3)
        assert dac.unloaded_full_scale_current() == pytest.approx(10e-6, rel=1e-6)

    def test_for_full_scale_current_with_load(self):
        load = 1e-3
        dac = DtcsDac.for_full_scale_current(10e-6, bits=5, delta_v=30e-3, load_conductance=load)
        assert dac.output_current(dac.max_code, load) == pytest.approx(10e-6, rel=1e-6)

    def test_unreachable_full_scale_rejected(self):
        with pytest.raises(ValueError):
            DtcsDac.for_full_scale_current(
                1e-3, bits=5, delta_v=30e-3, load_conductance=1e-3
            )

    def test_unit_device_width_reasonable(self):
        dac = DtcsDac(bits=5, unit_conductance=12.5e-6)
        device = dac.unit_device()
        assert device.width_nm >= device.technology.min_width_nm
        # Deep-triode conductance of the sized device matches the request.
        assert device.triode_conductance(device.technology.supply_voltage) == pytest.approx(
            12.5e-6, rel=0.05
        )

    def test_switching_energy_positive_and_tiny(self):
        dac = DtcsDac(bits=5, unit_conductance=12.5e-6)
        energy = dac.switching_energy()
        assert 0 < energy < 1e-13

    def test_expected_mismatch_single_step_small(self):
        # The paper notes DTCS variation enters only as a "single step";
        # the deep-triode conversion keeps it below ~10 %.
        dac = DtcsDac(bits=5, unit_conductance=12.5e-6)
        assert dac.expected_mismatch_sigma() < 0.15


class TestMismatch:
    def test_mismatch_reproducible_with_seed(self):
        a = DtcsDac(bits=5, mismatch_sigma=0.05, seed=3).bit_conductances
        b = DtcsDac(bits=5, mismatch_sigma=0.05, seed=3).bit_conductances
        assert np.allclose(a, b)

    def test_mismatch_changes_with_seed(self):
        a = DtcsDac(bits=5, mismatch_sigma=0.05, seed=3).bit_conductances
        b = DtcsDac(bits=5, mismatch_sigma=0.05, seed=4).bit_conductances
        assert not np.allclose(a, b)

    def test_zero_mismatch_exact_weights(self):
        dac = DtcsDac(bits=4, unit_conductance=1e-6, mismatch_sigma=0.0)
        assert np.allclose(dac.bit_conductances, 1e-6 * np.array([1, 2, 4, 8]))

    def test_invalid_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DtcsDac(mismatch_sigma=0.9)
