"""Tests for the magnetic tunnel junction read-stack model."""

import pytest

from repro.devices.mtj import MagneticTunnelJunction, make_reference_mtj


class TestResistanceStates:
    def test_paper_default_resistances(self):
        mtj = MagneticTunnelJunction()
        assert mtj.resistance(parallel=True) == pytest.approx(5.0e3)
        assert mtj.resistance(parallel=False) == pytest.approx(15.0e3)

    def test_tmr_is_200_percent(self):
        mtj = MagneticTunnelJunction()
        assert mtj.tunnel_magnetoresistance == pytest.approx(2.0)

    def test_reference_is_midway(self):
        mtj = MagneticTunnelJunction()
        assert mtj.reference_resistance() == pytest.approx(10.0e3)

    def test_read_margin_positive_and_normalised(self):
        mtj = MagneticTunnelJunction()
        margin = mtj.read_margin()
        assert margin == pytest.approx(0.5)

    def test_invalid_ordering_rejected(self):
        with pytest.raises(ValueError):
            MagneticTunnelJunction(r_parallel_ohm=15e3, r_antiparallel_ohm=5e3)


class TestVariation:
    def test_variation_scales_both_states_together(self):
        mtj = MagneticTunnelJunction(variation=0.1, seed=3)
        ratio = mtj.resistance(False) / mtj.resistance(True)
        assert ratio == pytest.approx(3.0)

    def test_variation_reproducible(self):
        a = MagneticTunnelJunction(variation=0.1, seed=5).resistance(True)
        b = MagneticTunnelJunction(variation=0.1, seed=5).resistance(True)
        assert a == pytest.approx(b)

    def test_zero_variation_nominal(self):
        mtj = MagneticTunnelJunction(variation=0.0, seed=1)
        assert mtj.resistance(True) == pytest.approx(5.0e3)

    def test_excessive_variation_rejected(self):
        with pytest.raises(ValueError):
            MagneticTunnelJunction(variation=0.9)


class TestReferenceDevice:
    def test_make_reference_sits_between_states(self):
        device = MagneticTunnelJunction()
        reference = make_reference_mtj(device)
        value = reference.resistance(True)
        assert device.resistance(True) < value < device.resistance(False)

    def test_reference_states_nearly_equal(self):
        reference = make_reference_mtj(MagneticTunnelJunction())
        assert reference.resistance(True) == pytest.approx(reference.resistance(False), rel=1e-6)
