"""Tests for the transient domain-wall motion model."""

import numpy as np
import pytest

from repro.devices.dwm import DomainWallMagnet
from repro.devices.dynamics import DomainWallTransientModel


def make_model(temperature_factor=0.0, seed=0):
    return DomainWallTransientModel(
        magnet=DomainWallMagnet(), temperature_factor=temperature_factor, seed=seed
    )


class TestDeterministicMotion:
    def test_no_motion_below_threshold(self):
        model = make_model()
        result = model.simulate(0.5 * model.magnet.critical_current, duration=5e-9)
        assert not result.switched
        assert result.positions[-1] == pytest.approx(0.0, abs=1e-12)

    def test_switching_time_matches_quasistatic_model(self):
        model = make_model()
        current = 2.0 * model.magnet.critical_current
        result = model.simulate(current, duration=5e-9)
        assert result.switched
        assert result.switching_time == pytest.approx(
            model.magnet.switching_time(current), rel=0.05
        )

    def test_larger_current_switches_faster(self):
        model = make_model()
        slow = model.simulate(1.5 * model.magnet.critical_current, duration=10e-9)
        fast = model.simulate(4.0 * model.magnet.critical_current, duration=10e-9)
        assert fast.switching_time < slow.switching_time

    def test_negative_current_drives_backwards(self):
        model = make_model()
        result = model.simulate(
            -2.0 * model.magnet.critical_current, duration=2e-9, initial_position=0.8
        )
        assert result.positions[-1] < 0.8
        assert not result.switched

    def test_positions_bounded(self):
        model = make_model()
        result = model.simulate(3.0 * model.magnet.critical_current, duration=10e-9)
        assert np.all(result.positions >= 0.0)
        assert np.all(result.positions <= 1.0)

    def test_trajectory_shapes_consistent(self):
        model = make_model()
        result = model.simulate(2.0 * model.magnet.critical_current, duration=2e-9)
        assert result.times.shape == result.positions.shape
        assert result.times[0] == 0.0

    def test_invalid_arguments_rejected(self):
        model = make_model()
        with pytest.raises(ValueError):
            model.simulate(1e-6, duration=0.0)
        with pytest.raises(ValueError):
            model.simulate(1e-6, initial_position=1.5)


class TestThermalMotion:
    def test_reproducible_with_seed(self):
        a = make_model(temperature_factor=1.0, seed=5).simulate(1.5e-6)
        b = make_model(temperature_factor=1.0, seed=5).simulate(1.5e-6)
        assert np.allclose(a.positions, b.positions)

    def test_thermal_noise_spreads_switching_times(self):
        model = make_model(temperature_factor=1.0, seed=3)
        current = 2.0 * model.magnet.critical_current
        times = model.switching_time_distribution(current, trials=30)
        finite = times[np.isfinite(times)]
        assert finite.size >= 25
        assert np.std(finite) > 0

    def test_mean_switching_time_near_deterministic(self):
        model = make_model(temperature_factor=1.0, seed=7)
        current = 2.5 * model.magnet.critical_current
        times = model.switching_time_distribution(current, trials=40)
        finite = times[np.isfinite(times)]
        deterministic = model.magnet.switching_time(current)
        assert np.mean(finite) == pytest.approx(deterministic, rel=0.35)

    def test_switching_probability_monotonic_in_current(self):
        model = make_model(temperature_factor=1.0, seed=9)
        ic = model.magnet.critical_current
        low = model.switching_probability(1.02 * ic, trials=30)
        high = model.switching_probability(3.0 * ic, trials=30)
        assert high >= low
        assert high == 1.0

    def test_strong_overdrive_always_switches_within_window(self):
        model = make_model(temperature_factor=1.0, seed=11)
        assert model.switching_probability(4.0 * model.magnet.critical_current, trials=20) == 1.0


class TestTimingMargin:
    def test_nominal_device_has_positive_margin_at_100MHz(self):
        model = make_model()
        current = 2.0 * model.magnet.critical_current
        # 1.5 ns switching inside a 5 ns evaluate phase leaves healthy slack.
        assert model.timing_margin(current, clock_period=10e-9) > 2e-9

    def test_margin_negative_when_underdriven(self):
        model = make_model()
        current = 1.01 * model.magnet.critical_current
        assert model.timing_margin(current, clock_period=10e-9) < 0

    def test_invalid_clock_rejected(self):
        with pytest.raises(ValueError):
            make_model().timing_margin(2e-6, clock_period=0.0)
