"""Tests for the domain-wall neuron (spin neuron) comparator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.dwn import DomainWallNeuron, DwnConfig
from repro.devices.latch import DynamicCmosLatch


def make_neuron(**kwargs) -> DomainWallNeuron:
    config = DwnConfig(**kwargs) if kwargs else DwnConfig()
    return DomainWallNeuron(config=config, seed=0)


class TestConfig:
    def test_default_threshold_matches_table2(self):
        assert DwnConfig().threshold_current == pytest.approx(1.0e-6)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            DwnConfig(threshold_current=-1e-6)

    def test_invalid_initial_state_rejected(self):
        with pytest.raises(ValueError):
            DomainWallNeuron(initial_state=0)


class TestSwitching:
    def test_positive_overdrive_sets_plus_one(self):
        neuron = make_neuron()
        assert neuron.apply_current(2e-6) == 1

    def test_negative_overdrive_sets_minus_one(self):
        neuron = make_neuron()
        neuron.apply_current(2e-6)
        assert neuron.apply_current(-2e-6) == -1

    def test_subthreshold_current_holds_state(self):
        neuron = make_neuron()
        neuron.apply_current(2e-6)
        assert neuron.apply_current(-0.5e-6) == 1
        assert neuron.apply_current(0.0) == 1

    def test_exact_threshold_switches(self):
        neuron = make_neuron()
        assert neuron.apply_current(1.0e-6) == 1

    def test_switch_count_increments_only_on_flips(self):
        neuron = make_neuron()
        neuron.apply_current(2e-6)
        neuron.apply_current(3e-6)  # same polarity, no flip
        neuron.apply_current(-2e-6)
        assert neuron.switch_count == 2

    def test_reset_counts_switch_when_state_changes(self):
        neuron = make_neuron()
        neuron.apply_current(2e-6)
        count = neuron.switch_count
        neuron.reset(-1)
        assert neuron.switch_count == count + 1
        neuron.reset(-1)
        assert neuron.switch_count == count + 1

    def test_compare_resolves_current_difference(self):
        neuron = make_neuron()
        assert neuron.compare(10e-6, 5e-6) == 1
        assert neuron.compare(5e-6, 10e-6) == -1


class TestHysteresis:
    def test_transfer_characteristic_shows_hysteresis(self):
        neuron = make_neuron()
        sweep = np.linspace(-3e-6, 3e-6, 121)
        trace = neuron.transfer_characteristic(sweep, sweeps=2)
        up = trace[: sweep.size]
        down = trace[sweep.size :][::-1]
        # On the up sweep the state flips to +1 only once +threshold is
        # crossed; on the down sweep it stays +1 until -threshold.
        differing = np.sum(up != down)
        assert differing > 0
        # The differing band equals the hysteresis window (2 x threshold).
        band_width = differing * (sweep[1] - sweep[0])
        assert band_width == pytest.approx(neuron.hysteresis_width(), rel=0.15)

    def test_hysteresis_width_is_twice_threshold(self):
        neuron = make_neuron(threshold_current=0.5e-6)
        assert neuron.hysteresis_width() == pytest.approx(1.0e-6)

    def test_transfer_characteristic_requires_positive_sweeps(self):
        neuron = make_neuron()
        with pytest.raises(ValueError):
            neuron.transfer_characteristic(np.array([0.0]), sweeps=0)


class TestStochasticSwitching:
    def test_deterministic_mode_has_step_probability(self):
        neuron = make_neuron(stochastic=False)
        assert neuron.switching_probability(0.99e-6) == 0.0
        assert neuron.switching_probability(1.01e-6) == 1.0

    def test_stochastic_probability_monotonic_in_current(self):
        neuron = make_neuron(stochastic=True)
        currents = np.linspace(0.1e-6, 0.99e-6, 10)
        probabilities = [neuron.switching_probability(i) for i in currents]
        assert np.all(np.diff(probabilities) >= 0)
        assert probabilities[0] < 1e-3
        assert probabilities[-1] < 1.0

    def test_stochastic_probability_above_threshold_is_one(self):
        neuron = make_neuron(stochastic=True)
        assert neuron.switching_probability(1.5e-6) == 1.0

    def test_barrier_controls_subthreshold_softness(self):
        soft = make_neuron(stochastic=True, barrier_kt=10.0)
        hard = make_neuron(stochastic=True, barrier_kt=40.0)
        current = 0.9e-6
        assert soft.switching_probability(current) > hard.switching_probability(current)


class TestReadout:
    def test_read_reflects_state_with_ideal_latch(self):
        latch = DynamicCmosLatch(offset_sigma_ohm=0.0)
        neuron = DomainWallNeuron(latch=latch, seed=0)
        neuron.apply_current(2e-6)
        assert neuron.read() == 1
        neuron.apply_current(-2e-6)
        assert neuron.read() == -1

    def test_evaluate_combines_apply_and_read(self):
        latch = DynamicCmosLatch(offset_sigma_ohm=0.0)
        neuron = DomainWallNeuron(latch=latch, seed=0)
        assert neuron.evaluate(10e-6, 5e-6) == 1
        assert neuron.evaluate(5e-6, 10e-6) == -1

    def test_read_energy_positive_and_small(self):
        neuron = make_neuron()
        assert 0 < neuron.read_energy() < 1e-14

    def test_switching_energy_positive(self):
        neuron = make_neuron()
        assert neuron.switching_energy() > 0

    @given(
        currents=st.lists(
            st.floats(min_value=-5e-6, max_value=5e-6, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_state_always_binary(self, currents):
        neuron = make_neuron()
        for current in currents:
            state = neuron.apply_current(current)
            assert state in (-1, 1)

    @given(drive=st.floats(min_value=1.01e-6, max_value=1e-3, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_property_above_threshold_always_follows_drive_sign(self, drive):
        neuron = make_neuron()
        assert neuron.apply_current(drive) == 1
        assert neuron.apply_current(-drive) == -1


class TestBatchSupport:
    """Hooks used by the vectorised WTA engine."""

    def test_draw_read_offsets_matches_sequential_reads(self):
        a = DomainWallNeuron(seed=5)
        b = DomainWallNeuron(seed=5)
        drawn = a.draw_read_offsets(6)
        assert drawn.shape == (6,)
        for _ in range(6):
            b.read()
        # Both streams must now be in the same state.
        assert a._rng.random() == b._rng.random()

    def test_draw_read_offsets_offset_free_latch_draws_nothing(self):
        neuron = DomainWallNeuron(
            latch=DynamicCmosLatch(offset_sigma_ohm=0.0), seed=5
        )
        assert np.array_equal(neuron.draw_read_offsets(4), np.zeros(4))
        # The stream must be untouched: a fresh same-seed generator agrees.
        assert neuron._rng.random() == np.random.default_rng(5).random()

    def test_apply_batch_outcome_updates_bookkeeping(self):
        neuron = make_neuron()
        base = neuron.switch_count
        neuron.apply_batch_outcome(1, 3)
        assert neuron.state == 1
        assert neuron.switch_count == base + 3

    def test_apply_batch_outcome_validation(self):
        neuron = make_neuron()
        with pytest.raises(ValueError):
            neuron.apply_batch_outcome(0, 1)
        with pytest.raises(ValueError):
            neuron.apply_batch_outcome(1, -1)
        with pytest.raises(ValueError):
            neuron.draw_read_offsets(-1)
