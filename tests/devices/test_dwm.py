"""Tests for the domain-wall magnet scaling physics (Fig. 5 behaviour)."""

import numpy as np
import pytest

from repro.devices.dwm import DomainWallMagnet


class TestGeometry:
    def test_default_dimensions_from_table2(self):
        magnet = DomainWallMagnet()
        assert magnet.cross_section_m2 == pytest.approx(3e-9 * 20e-9)
        assert magnet.volume_m3 == pytest.approx(3e-9 * 20e-9 * 60e-9)

    def test_scaled_dimensions(self):
        magnet = DomainWallMagnet()
        half = magnet.scaled(0.5)
        assert half.thickness_nm == pytest.approx(1.5)
        assert half.width_nm == pytest.approx(10.0)
        assert half.length_nm == pytest.approx(30.0)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            DomainWallMagnet().scaled(0.0)


class TestCriticalCurrent:
    def test_critical_current_about_1uA_scale(self):
        # 1e6 A/cm^2 over a 3x20 nm^2 cross-section gives 0.6 uA; the paper
        # quotes ~1 uA for its device including margin.
        magnet = DomainWallMagnet()
        assert magnet.critical_current == pytest.approx(0.6e-6, rel=1e-6)

    def test_critical_current_scales_with_cross_section(self):
        # Fig. 5b: scaling the device reduces the critical current quadratically
        # with the linear dimension (cross-section area).
        magnet = DomainWallMagnet()
        assert magnet.scaled(0.5).critical_current == pytest.approx(
            magnet.critical_current / 4.0
        )

    def test_critical_current_monotonic_in_scale(self):
        magnet = DomainWallMagnet()
        scales = [0.4, 0.6, 0.8, 1.0, 1.2]
        currents = [magnet.scaled(s).critical_current for s in scales]
        assert np.all(np.diff(currents) > 0)


class TestSwitchingDynamics:
    def test_no_switching_below_threshold(self):
        magnet = DomainWallMagnet()
        assert magnet.wall_velocity(0.5 * magnet.critical_current) == 0.0
        assert magnet.switching_time(0.9 * magnet.critical_current) == float("inf")

    def test_switching_time_about_1p5ns_at_nominal_drive(self):
        # Table 2: Tswitch = 1.5 ns with the ~1 uA write current (≈2x Ic for
        # the 3x20x60 nm device).
        magnet = DomainWallMagnet()
        t = magnet.switching_time(2.0 * magnet.critical_current)
        assert t == pytest.approx(1.5e-9, rel=0.01)

    def test_faster_switching_with_larger_current(self):
        magnet = DomainWallMagnet()
        t1 = magnet.switching_time(1.5 * magnet.critical_current)
        t2 = magnet.switching_time(3.0 * magnet.critical_current)
        assert t2 < t1

    def test_smaller_device_switches_faster_at_fixed_current(self):
        # Fig. 5c: for a given write current, smaller devices switch faster.
        magnet = DomainWallMagnet()
        current = 2.0 * magnet.critical_current
        smaller = magnet.scaled(0.7)
        assert smaller.switching_time(current) < magnet.switching_time(current)

    def test_minimum_current_for_time_inverts_switching_time(self):
        magnet = DomainWallMagnet()
        current = magnet.minimum_current_for_time(1.0e-9)
        assert magnet.switching_time(current) == pytest.approx(1.0e-9, rel=1e-6)

    def test_switching_time_sign_independent(self):
        magnet = DomainWallMagnet()
        current = 2.0 * magnet.critical_current
        assert magnet.switching_time(current) == magnet.switching_time(-current)


class TestThermalStability:
    def test_barrier_energy_in_joules(self):
        magnet = DomainWallMagnet(barrier_kt=20.0)
        assert magnet.barrier_energy_joule == pytest.approx(20 * 1.380649e-23 * 300)

    def test_retention_time_grows_exponentially_with_barrier(self):
        low = DomainWallMagnet(barrier_kt=20.0)
        high = DomainWallMagnet(barrier_kt=40.0)
        assert high.retention_time() / low.retention_time() == pytest.approx(
            np.exp(20.0), rel=1e-6
        )

    def test_computing_barrier_retention_far_exceeds_evaluation_time(self):
        # Eb = 20 kT gives ~0.5 s retention with a 1 ns attempt time -- ample
        # compared to the 10 ns evaluation window.
        magnet = DomainWallMagnet(barrier_kt=20.0)
        assert magnet.retention_time() > 1e-3

    def test_random_switching_probability_small_within_cycle(self):
        magnet = DomainWallMagnet(barrier_kt=20.0)
        p = magnet.random_switching_probability(duration=10e-9)
        assert p < 1e-4

    def test_random_switching_probability_increases_with_duration(self):
        magnet = DomainWallMagnet(barrier_kt=20.0)
        assert magnet.random_switching_probability(1e-3) > magnet.random_switching_probability(1e-6)


class TestEnergy:
    def test_switching_energy_finite_above_threshold(self):
        magnet = DomainWallMagnet()
        energy = magnet.switching_energy(2.0 * magnet.critical_current)
        assert 0 < energy < 1e-15  # well below a femtojoule

    def test_switching_energy_infinite_below_threshold(self):
        magnet = DomainWallMagnet()
        assert magnet.switching_energy(0.5 * magnet.critical_current) == float("inf")

    def test_strip_resistance_positive(self):
        magnet = DomainWallMagnet()
        assert magnet.strip_resistance() > 0
