"""Tests for the Ag-Si multi-level memristor model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.memristor import (
    DEFAULT_WRITE_ACCURACY,
    MemristorModel,
    ParallelMemristorCell,
)


class TestConductanceRange:
    def test_table2_default_range(self):
        device = MemristorModel()
        assert device.g_min == pytest.approx(1.0 / 32.0e3)
        assert device.g_max == pytest.approx(1.0 / 1.0e3)
        assert device.conductance_ratio == pytest.approx(32.0)

    def test_level_conductances_span_range(self):
        device = MemristorModel(levels=32)
        levels = device.level_conductances()
        assert levels.shape == (32,)
        assert levels[0] == pytest.approx(device.g_min)
        assert levels[-1] == pytest.approx(device.g_max)
        assert np.all(np.diff(levels) > 0)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            MemristorModel(r_min_ohm=10e3, r_max_ohm=1e3)

    def test_invalid_write_accuracy_rejected(self):
        with pytest.raises(ValueError):
            MemristorModel(write_accuracy=0.9)


class TestValueMapping:
    def test_value_zero_maps_to_gmin(self):
        device = MemristorModel()
        assert device.value_to_conductance(np.array([0.0]))[0] == pytest.approx(device.g_min)

    def test_value_one_maps_to_gmax(self):
        device = MemristorModel()
        assert device.value_to_conductance(np.array([1.0]))[0] == pytest.approx(device.g_max)

    def test_mapping_roundtrip(self):
        device = MemristorModel()
        values = np.linspace(0, 1, 33)
        back = device.conductance_to_value(device.value_to_conductance(values))
        assert np.allclose(back, values)

    def test_out_of_range_value_rejected(self):
        device = MemristorModel()
        with pytest.raises(ValueError):
            device.value_to_conductance(np.array([1.5]))


class TestProgramming:
    def test_zero_accuracy_is_exact(self):
        device = MemristorModel(write_accuracy=0.0, seed=1)
        targets = device.level_conductances()
        assert np.allclose(device.program(targets), targets)

    def test_programmed_values_stay_in_range(self):
        device = MemristorModel(write_accuracy=0.03, seed=2)
        values = np.random.default_rng(0).uniform(0, 1, 500)
        programmed = device.program_values(values)
        assert np.all(programmed >= device.g_min - 1e-15)
        assert np.all(programmed <= device.g_max + 1e-15)

    def test_write_error_statistics_match_accuracy(self):
        device = MemristorModel(write_accuracy=0.03, seed=3)
        target = np.full(20000, 0.5 * (device.g_min + device.g_max))
        programmed = device.program(target)
        relative_error = (programmed - target) / target
        assert np.std(relative_error) == pytest.approx(0.03, rel=0.1)
        assert abs(np.mean(relative_error)) < 0.002

    def test_target_outside_range_rejected(self):
        device = MemristorModel()
        with pytest.raises(ValueError):
            device.program(np.array([device.g_max * 2]))

    def test_programming_reproducible_with_seed(self):
        values = np.linspace(0, 1, 10)
        a = MemristorModel(seed=9).program_values(values)
        b = MemristorModel(seed=9).program_values(values)
        assert np.allclose(a, b)

    def test_read_noise_zero_returns_copy(self):
        device = MemristorModel(read_noise=0.0)
        conductances = device.level_conductances()
        read = device.read(conductances)
        assert np.allclose(read, conductances)
        read[0] = 0.0
        assert conductances[0] > 0.0

    def test_read_noise_perturbs(self):
        device = MemristorModel(read_noise=0.05, seed=4)
        conductances = np.full(1000, 1e-4)
        read = device.read(conductances)
        assert np.std(read / conductances - 1.0) == pytest.approx(0.05, rel=0.15)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_programming_bounded(self, seed):
        device = MemristorModel(write_accuracy=0.1, seed=seed)
        values = np.random.default_rng(seed).uniform(0, 1, 64)
        programmed = device.program_values(values)
        assert np.all(programmed >= device.g_min - 1e-15)
        assert np.all(programmed <= device.g_max + 1e-15)


class TestWriteCostModel:
    def test_default_write_energy_is_baseline(self):
        device = MemristorModel()
        assert device.write_energy() == pytest.approx(1.0e-12)

    def test_higher_precision_costs_more_energy(self):
        device = MemristorModel()
        assert device.write_energy(0.003) > device.write_energy(0.03)
        assert device.write_energy(0.003) == pytest.approx(10 * device.write_energy(0.03))

    def test_equivalent_bits_for_3_percent(self):
        # 3 % accuracy is "equivalent to 5 bits" in the paper.
        device = MemristorModel(write_accuracy=DEFAULT_WRITE_ACCURACY)
        assert device.equivalent_bits() == pytest.approx(5.06, abs=0.1)


class TestParallelMemristorCell:
    def test_composite_range_scales_with_count(self):
        base = MemristorModel()
        cell = ParallelMemristorCell(base, count=4)
        assert cell.g_min == pytest.approx(4 * base.g_min)
        assert cell.g_max == pytest.approx(4 * base.g_max)

    def test_effective_accuracy_improves_with_sqrt_count(self):
        base = MemristorModel(write_accuracy=0.03)
        cell = ParallelMemristorCell(base, count=4)
        assert cell.effective_write_accuracy() == pytest.approx(0.015)
        assert cell.effective_bits() > base.equivalent_bits()

    def test_programmed_composite_error_shrinks(self):
        base = MemristorModel(write_accuracy=0.05, seed=8)
        cell = ParallelMemristorCell(base, count=8)
        values = np.full(2000, 0.5)
        programmed = cell.program_values(values)
        ideal = cell.value_to_conductance(values)
        relative_error = np.std((programmed - ideal) / ideal)
        assert relative_error < 0.05 / np.sqrt(8) * 1.3

    def test_value_roundtrip(self):
        base = MemristorModel()
        cell = ParallelMemristorCell(base, count=3)
        values = np.linspace(0, 1, 9)
        back = cell.conductance_to_value(cell.value_to_conductance(values))
        assert np.allclose(back, values)

    def test_write_energy_scales_with_count(self):
        base = MemristorModel()
        cell = ParallelMemristorCell(base, count=5)
        assert cell.write_energy() == pytest.approx(5 * base.write_energy())

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            ParallelMemristorCell(MemristorModel(), count=0)
