"""Tests for the analytical 45 nm transistor model."""

import numpy as np
import pytest

from repro.devices.transistor import MosPolarity, MosTransistor, TechnologyParameters


class TestTechnologyParameters:
    def test_defaults_are_45nm_like(self):
        tech = TechnologyParameters()
        assert tech.supply_voltage == pytest.approx(1.0)
        assert tech.min_length_nm == pytest.approx(45.0)

    def test_sigma_vt_follows_pelgrom(self):
        tech = TechnologyParameters()
        small = tech.sigma_vt(90.0, 45.0)
        large = tech.sigma_vt(360.0, 180.0)  # 16x the area
        assert small / large == pytest.approx(4.0)

    def test_sigma_vt_minimum_device_tens_of_mv(self):
        tech = TechnologyParameters()
        sigma = tech.sigma_vt_minimum_device()
        assert 0.02 < sigma < 0.12

    def test_area_for_sigma_vt_inverts_pelgrom(self):
        tech = TechnologyParameters()
        area = tech.area_for_sigma_vt(5.0e-3)
        width_nm = np.sqrt(area) * 1e9
        assert tech.sigma_vt(width_nm, width_nm) == pytest.approx(5.0e-3)

    def test_gate_capacitance_scales_with_area(self):
        tech = TechnologyParameters()
        assert tech.gate_capacitance(180, 45) == pytest.approx(
            2 * tech.gate_capacitance(90, 45)
        )

    def test_minimum_gate_capacitance_sub_femtofarad(self):
        tech = TechnologyParameters()
        assert 1e-18 < tech.minimum_gate_capacitance() < 1e-15

    def test_inverter_energy_sub_femtojoule(self):
        tech = TechnologyParameters()
        assert 1e-17 < tech.inverter_switching_energy() < 1e-15

    def test_leakage_power_scales_with_width(self):
        tech = TechnologyParameters()
        assert tech.leakage_power(2000.0) == pytest.approx(2 * tech.leakage_power(1000.0))

    def test_process_transconductance_by_polarity(self):
        tech = TechnologyParameters()
        assert tech.process_transconductance(MosPolarity.NMOS) > tech.process_transconductance(
            MosPolarity.PMOS
        )

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            TechnologyParameters(threshold_voltage=2.0)


class TestMosTransistor:
    def test_cutoff_below_threshold(self):
        device = MosTransistor()
        assert device.drain_current(vgs=0.2, vds=0.5) == 0.0

    def test_triode_vs_saturation_boundary(self):
        device = MosTransistor()
        vgs = 0.8
        vov = device.overdrive(vgs)
        triode = device.drain_current(vgs, vov * 0.99)
        saturation = device.drain_current(vgs, vov * 2.0)
        assert triode < saturation * 1.01
        assert saturation == pytest.approx(device.saturation_current(vgs))

    def test_deep_triode_conductance_linear_in_overdrive(self):
        device = MosTransistor()
        g1 = device.triode_conductance(0.6)
        g2 = device.triode_conductance(0.8)
        assert g2 / g1 == pytest.approx((0.8 - 0.4) / (0.6 - 0.4))

    def test_deep_triode_current_matches_conductance_times_vds(self):
        device = MosTransistor()
        vgs, vds = 1.0, 0.01
        expected = device.triode_conductance(vgs) * vds
        assert device.drain_current(vgs, vds) == pytest.approx(expected, rel=0.01)

    def test_saturation_current_quadratic_in_overdrive(self):
        device = MosTransistor()
        i1 = device.saturation_current(0.6)
        i2 = device.saturation_current(0.8)
        assert i2 / i1 == pytest.approx(4.0)

    def test_required_vgs_for_current_roundtrip(self):
        device = MosTransistor()
        target = 10e-6
        vgs = device.required_vgs_for_current(target)
        assert device.saturation_current(vgs) == pytest.approx(target, rel=1e-6)

    def test_mismatch_sampled_with_seed(self):
        tech = TechnologyParameters()
        a = MosTransistor(technology=tech, seed=1)
        b = MosTransistor(technology=tech, seed=1)
        c = MosTransistor(technology=tech, seed=2)
        assert a.vt_offset == b.vt_offset
        assert a.vt_offset != c.vt_offset
        assert abs(a.vt_offset) < 5 * a.sigma_vt()

    def test_no_seed_means_no_mismatch(self):
        device = MosTransistor()
        assert device.vt_offset == 0.0

    def test_wider_device_has_more_current(self):
        narrow = MosTransistor(width_nm=90)
        wide = MosTransistor(width_nm=900)
        assert wide.saturation_current(0.8) == pytest.approx(
            10 * narrow.saturation_current(0.8)
        )

    def test_transconductance_linear_in_overdrive(self):
        device = MosTransistor()
        assert device.transconductance(0.8) == pytest.approx(2 * device.transconductance(0.6))
