"""Tests for the end-to-end face-recognition pipeline."""

import numpy as np
import pytest

from repro.core.pipeline import FaceRecognitionPipeline, build_default_amm, build_pipeline
from repro.datasets.features import FeatureExtractor


@pytest.fixture(scope="module")
def pipeline(small_dataset, small_parameters):
    return build_pipeline(small_dataset, parameters=small_parameters, seed=13)


class TestBuild:
    def test_pipeline_geometry_matches_dataset(self, pipeline, small_dataset, small_parameters):
        assert pipeline.amm.crossbar.columns == small_dataset.num_classes
        assert pipeline.amm.crossbar.rows == small_parameters.feature_length

    def test_column_labels_cover_dataset_classes(self, pipeline, small_dataset):
        assert set(pipeline.amm.column_labels.tolist()) == set(
            small_dataset.classes.tolist()
        )

    def test_build_default_amm_returns_module(self, small_dataset, small_parameters):
        amm = build_default_amm(small_dataset, parameters=small_parameters, seed=1)
        assert amm.crossbar.columns == small_dataset.num_classes

    def test_mismatched_extractor_rejected(self, small_dataset, small_parameters):
        amm = build_default_amm(small_dataset, parameters=small_parameters, seed=1)
        wrong_extractor = FeatureExtractor(feature_shape=(16, 8), bits=5)
        with pytest.raises(ValueError):
            FaceRecognitionPipeline(amm, wrong_extractor)

    def test_build_reproducible_with_seed(self, small_dataset, small_parameters):
        a = build_pipeline(small_dataset, parameters=small_parameters, seed=7)
        b = build_pipeline(small_dataset, parameters=small_parameters, seed=7)
        assert np.allclose(a.amm.crossbar.conductances, b.amm.crossbar.conductances)


class TestClassification:
    def test_classify_image_returns_result(self, pipeline, small_dataset):
        result = pipeline.classify_image(small_dataset.images[0])
        assert result.winner in small_dataset.classes
        assert 0 <= result.dom_code < pipeline.amm.wta.levels

    def test_classify_codes_equivalent_to_classify_image(self, pipeline, small_dataset):
        image = small_dataset.images[3]
        codes = pipeline.extractor.extract_codes(image)
        a = pipeline.classify_image(image)
        b = pipeline.classify_codes(codes)
        assert a.winner_column == b.winner_column

    def test_evaluation_accuracy_reasonable(self, pipeline, small_dataset):
        evaluation = pipeline.evaluate(small_dataset)
        # The reduced corpus is easy; the hardware pipeline must get a clear
        # majority right and accept most inputs.
        assert evaluation.accuracy >= 0.7
        assert evaluation.acceptance_rate >= 0.7
        assert evaluation.count == small_dataset.size
        assert evaluation.mean_static_power > 0

    def test_limit_subsamples_evaluation(self, pipeline, small_dataset):
        evaluation = pipeline.evaluate(small_dataset, limit=5)
        assert evaluation.count == 5

    def test_per_class_accuracy_keys(self, pipeline, small_dataset):
        evaluation = pipeline.evaluate(small_dataset, limit=12)
        for label in evaluation.per_class_accuracy:
            assert label in small_dataset.classes
