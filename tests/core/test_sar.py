"""Tests for the successive-approximation register logic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sar import SuccessiveApproximationRegister


class TestBasicOperation:
    def test_begin_sets_msb(self):
        sar = SuccessiveApproximationRegister(5)
        assert sar.begin() == 16
        assert sar.current_bit == 4
        assert not sar.done

    def test_conversion_converges_to_value(self):
        # Digitise the value 21 with a 5-bit SAR and an exact comparator.
        sar = SuccessiveApproximationRegister(5)
        sar.begin()
        target = 21
        while not sar.done:
            sar.resolve_bit(target >= sar.trial_code)
        assert sar.code == 21

    def test_all_values_roundtrip(self):
        for target in range(32):
            sar = SuccessiveApproximationRegister(5)
            sar.begin()
            while not sar.done:
                sar.resolve_bit(target >= sar.trial_code)
            assert sar.code == target

    def test_decisions_recorded_msb_first(self):
        sar = SuccessiveApproximationRegister(3)
        sar.begin()
        while not sar.done:
            sar.resolve_bit(5 >= sar.trial_code)
        assert sar.code == 5
        assert sar.decisions == [True, False, True]

    def test_requires_begin_before_resolve(self):
        sar = SuccessiveApproximationRegister(4)
        with pytest.raises(RuntimeError):
            sar.resolve_bit(True)
        with pytest.raises(RuntimeError):
            _ = sar.trial_code

    def test_resolve_after_done_rejected(self):
        sar = SuccessiveApproximationRegister(2)
        sar.begin()
        sar.resolve_bit(True)
        sar.resolve_bit(True)
        assert sar.done
        with pytest.raises(RuntimeError):
            sar.resolve_bit(True)

    def test_bit_value_accessor(self):
        sar = SuccessiveApproximationRegister(4)
        sar.begin()
        while not sar.done:
            sar.resolve_bit(10 >= sar.trial_code)
        assert [sar.bit_value(k) for k in range(4)] == [0, 1, 0, 1]
        with pytest.raises(ValueError):
            sar.bit_value(4)

    def test_max_code(self):
        assert SuccessiveApproximationRegister(5).max_code == 31


class TestReferenceConversion:
    def test_convert_value_matches_floor_quantisation(self):
        full_scale = 32e-6
        for value in np.linspace(0, full_scale * 0.999, 64):
            code = SuccessiveApproximationRegister.convert_value(value, full_scale, 5)
            assert code == int(value / (full_scale / 32))

    def test_convert_value_clamps_at_max(self):
        code = SuccessiveApproximationRegister.convert_value(1.0, 32e-6, 5)
        assert code == 31

    def test_convert_value_invalid_full_scale(self):
        with pytest.raises(ValueError):
            SuccessiveApproximationRegister.convert_value(1.0, 0.0, 5)

    @given(
        value=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        bits=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_conversion_equals_floor(self, value, bits):
        full_scale = 1.0
        code = SuccessiveApproximationRegister.convert_value(value, full_scale, bits)
        levels = 2**bits
        expected = min(levels - 1, int(value / (full_scale / levels)))
        assert code == expected

    @given(bits=st.integers(min_value=1, max_value=8), target=st.integers(min_value=0, max_value=255))
    @settings(max_examples=80, deadline=None)
    def test_property_integer_targets_recovered_exactly(self, bits, target):
        target = target % (2**bits)
        sar = SuccessiveApproximationRegister(bits)
        sar.begin()
        while not sar.done:
            sar.resolve_bit(target >= sar.trial_code)
        assert sar.code == target
