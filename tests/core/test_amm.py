"""Tests for the associative memory module (Section 4 system)."""

import numpy as np
import pytest

from repro.core.amm import AssociativeMemoryModule, InputDacBank
from repro.core.config import DesignParameters


class TestInputDacBank:
    def test_conductance_linear_in_code_without_mismatch(self):
        bank = InputDacBank(rows=4, bits=5, unit_conductance=1e-6)
        codes = np.array([0, 1, 16, 31])
        conductances = bank.conductances(codes)
        assert conductances[0] == pytest.approx(0.0)
        assert conductances[1] == pytest.approx(1e-6)
        assert conductances[2] == pytest.approx(16e-6)
        assert conductances[3] == pytest.approx(31e-6)

    def test_per_row_mismatch_differs(self):
        bank = InputDacBank(rows=8, bits=5, unit_conductance=1e-6, mismatch_sigma=0.1, seed=1)
        codes = np.full(8, 31)
        conductances = bank.conductances(codes)
        assert np.std(conductances) > 0

    def test_rescaled_preserves_mismatch_pattern(self):
        bank = InputDacBank(rows=4, bits=5, unit_conductance=1e-6, mismatch_sigma=0.1, seed=2)
        doubled = bank.rescaled(2.0)
        assert np.allclose(doubled.bit_conductances, 2 * bank.bit_conductances)

    def test_code_validation(self):
        bank = InputDacBank(rows=2, bits=5, unit_conductance=1e-6)
        with pytest.raises(ValueError):
            bank.conductances(np.array([0, 32]))
        with pytest.raises(ValueError):
            bank.conductances(np.array([0]))

    def test_full_scale_conductance(self):
        bank = InputDacBank(rows=2, bits=5, unit_conductance=1e-6)
        assert bank.full_scale_conductance() == pytest.approx(31e-6)


class TestConstruction:
    def test_from_templates_builds_consistent_module(self, small_amm, small_parameters):
        assert small_amm.crossbar.rows == small_parameters.feature_length
        assert small_amm.crossbar.columns == small_parameters.num_templates
        assert small_amm.wta.columns == small_parameters.num_templates

    def test_calibration_places_peak_near_full_scale(self, small_amm, small_template_codes):
        # Driving with the strongest stored template must produce a peak
        # column current close to (but not exceeding much) the WTA range.
        best_current = 0.0
        for column in range(small_template_codes.shape[1]):
            solution = small_amm.column_solution(small_template_codes[:, column])
            peak = solution.column_currents.max()
            if peak > best_current:
                best_current = peak
        full_scale = small_amm.parameters.wta_full_scale_current
        assert 0.7 * full_scale < best_current < 1.1 * full_scale

    def test_column_label_mapping(self, small_template_codes, small_parameters):
        labels = [10, 20, 30, 40, 50, 60]
        amm = AssociativeMemoryModule.from_templates(
            small_template_codes, parameters=small_parameters,
            column_labels=labels, seed=1,
        )
        result = amm.recognise(small_template_codes[:, 2])
        assert result.winner in labels

    def test_mismatched_label_count_rejected(self, small_template_codes, small_parameters):
        with pytest.raises(ValueError):
            AssociativeMemoryModule.from_templates(
                small_template_codes, parameters=small_parameters,
                column_labels=[1, 2], seed=1,
            )

    def test_template_count_overrides_parameters(self, small_template_codes):
        # Parameters say 40 templates but only 6 columns are provided; the
        # module adapts.
        amm = AssociativeMemoryModule.from_templates(
            small_template_codes, parameters=DesignParameters(template_shape=(8, 4)), seed=1
        )
        assert amm.parameters.num_templates == small_template_codes.shape[1]

    def test_non_2d_templates_rejected(self, small_parameters):
        with pytest.raises(ValueError):
            AssociativeMemoryModule.from_templates(
                np.zeros(10, dtype=int), parameters=small_parameters
            )


class TestRecognition:
    def test_recognise_own_templates(self, small_amm, small_template_codes):
        # Driving the module with each stored pattern must recall that
        # pattern's column.
        correct = 0
        columns = small_template_codes.shape[1]
        for column in range(columns):
            result = small_amm.recognise(small_template_codes[:, column])
            if result.winner_column == column:
                correct += 1
        assert correct >= columns - 1

    def test_recognition_result_fields(self, small_amm, small_template_codes):
        result = small_amm.recognise(small_template_codes[:, 0])
        assert result.codes.shape == (small_amm.crossbar.columns,)
        assert result.column_currents.shape == (small_amm.crossbar.columns,)
        assert result.static_power > 0
        assert 0 <= result.dom_code < small_amm.wta.levels
        assert isinstance(result.accepted, bool) or result.accepted in (True, False)

    def test_strong_match_is_accepted(self, small_amm, small_template_codes):
        result = small_amm.recognise(small_template_codes[:, 1])
        assert result.accepted

    def test_recognise_ideal_matches_hardware_winner_for_strong_inputs(
        self, small_amm, small_template_codes
    ):
        for column in (0, 3, 5):
            hardware = small_amm.recognise(small_template_codes[:, column])
            ideal = small_amm.recognise_ideal(small_template_codes[:, column])
            assert hardware.winner_column == ideal.winner_column

    def test_input_shape_validation(self, small_amm):
        with pytest.raises(ValueError):
            small_amm.recognise(np.zeros(small_amm.crossbar.rows + 1, dtype=int))

    def test_input_variation_perturbs_currents(self, small_template_codes, small_parameters):
        amm = AssociativeMemoryModule.from_templates(
            small_template_codes, parameters=small_parameters,
            input_variation=0.05, seed=3,
        )
        codes = small_template_codes[:, 0]
        currents_a = amm.column_solution(codes).column_currents
        currents_b = amm.column_solution(codes).column_currents
        assert not np.allclose(currents_a, currents_b)

    def test_without_parasitics_gives_larger_currents(self, small_template_codes, small_parameters):
        amm = AssociativeMemoryModule.from_templates(
            small_template_codes, parameters=small_parameters,
            include_parasitics=True, seed=4,
        )
        codes = small_template_codes[:, 0]
        with_par = amm.column_solution(codes).column_currents.sum()
        amm.include_parasitics = False
        without_par = amm.column_solution(codes).column_currents.sum()
        assert without_par > with_par


class TestEvaluate:
    def test_evaluate_reports_statistics(self, small_amm, small_template_codes):
        labels = np.arange(small_template_codes.shape[1])
        stats = small_amm.evaluate(small_template_codes.T, labels)
        assert 0.8 <= stats["accuracy"] <= 1.0
        assert 0.0 <= stats["tie_rate"] <= 1.0
        assert stats["mean_static_power"] > 0

    def test_evaluate_validates_shapes(self, small_amm):
        with pytest.raises(ValueError):
            small_amm.evaluate(np.zeros((2, 3)), np.zeros(3))
        with pytest.raises(ValueError):
            small_amm.evaluate(np.zeros(5), np.zeros(5))

    def test_dom_threshold_code_from_fraction(self, small_amm):
        expected = int(round(small_amm.parameters.dom_threshold_fraction * (small_amm.wta.levels - 1)))
        assert small_amm.dom_threshold_code == expected
