"""Tests for the spin-CMOS AMM power model (Fig. 13a, Table 1 column 1)."""

import pytest

from repro.core.config import default_parameters
from repro.core.power import SpinAmmPowerModel

@pytest.fixture(scope="module")
def model():
    return SpinAmmPowerModel(default_parameters())


class TestBreakdownStructure:
    def test_breakdown_components_positive(self, model):
        breakdown = model.breakdown()
        assert breakdown.static_rcm > 0
        assert breakdown.static_sar_dac > 0
        assert breakdown.dynamic > 0
        assert breakdown.total == pytest.approx(
            breakdown.static_rcm + breakdown.static_sar_dac + breakdown.dynamic
        )

    def test_energy_per_recognition(self, model):
        breakdown = model.breakdown()
        assert breakdown.energy_per_recognition == pytest.approx(
            breakdown.total / 100e6
        )

    def test_as_dict_keys(self, model):
        data = model.breakdown().as_dict()
        for key in ("static_rcm", "static_sar_dac", "dynamic", "total", "energy_per_recognition"):
            assert key in data


class TestCalibrationAgainstPaper:
    def test_total_power_5bit_near_65uW(self, model):
        # Table 1: 65 uW for the 5-bit design at 100 MHz.
        assert model.total_power(resolution_bits=5) == pytest.approx(65e-6, rel=0.25)

    def test_total_power_4bit_near_45uW(self, model):
        assert model.total_power(resolution_bits=4) == pytest.approx(45e-6, rel=0.25)

    def test_total_power_3bit_near_32uW(self, model):
        assert model.total_power(resolution_bits=3) == pytest.approx(32e-6, rel=0.3)

    def test_power_decreases_with_resolution(self, model):
        assert (
            model.total_power(resolution_bits=5)
            > model.total_power(resolution_bits=4)
            > model.total_power(resolution_bits=3)
        )

    def test_energy_per_recognition_sub_picojoule(self, model):
        assert model.energy_per_recognition(resolution_bits=5) < 1e-12


class TestThresholdScaling:
    def test_static_power_proportional_to_threshold(self, model):
        # Fig. 13a: static power scales with the DWN threshold.
        low = model.breakdown(threshold_current=0.5e-6)
        high = model.breakdown(threshold_current=1.0e-6)
        assert high.static_total == pytest.approx(2 * low.static_total, rel=1e-6)

    def test_dynamic_power_independent_of_threshold(self, model):
        low = model.breakdown(threshold_current=0.25e-6)
        high = model.breakdown(threshold_current=2.0e-6)
        assert low.dynamic == pytest.approx(high.dynamic)

    def test_dynamic_dominates_at_low_threshold(self, model):
        breakdown = model.breakdown(threshold_current=0.25e-6)
        assert breakdown.dynamic > breakdown.static_total

    def test_static_comparable_to_dynamic_at_nominal_threshold(self, model):
        # Fig. 13a shows the two components of comparable magnitude at the
        # 1 uA design point.
        breakdown = model.breakdown(threshold_current=1.0e-6)
        ratio = breakdown.static_total / breakdown.dynamic
        assert 0.4 < ratio < 2.5


class TestMeasuredActivityPath:
    def test_dynamic_energy_from_events_positive(self, model):
        events = {
            "latch_senses": 200,
            "sar_bit_writes": 300,
            "dac_transitions": 250,
            "tracking_writes": 4,
            "detection_precharges": 5,
        }
        assert model.dynamic_energy_from_events(events) > 0

    def test_more_activity_more_energy(self, model):
        low = model.dynamic_energy_from_events({"latch_senses": 100})
        high = model.dynamic_energy_from_events({"latch_senses": 300})
        assert high == pytest.approx(3 * low)

    def test_power_from_measurement_combines_terms(self, model):
        breakdown = model.power_from_measurement(
            static_power=30e-6, events={"latch_senses": 200, "detection_precharges": 5}
        )
        assert breakdown.static_rcm == pytest.approx(30e-6)
        assert breakdown.total > 30e-6

    def test_invalid_static_power_rejected(self, model):
        with pytest.raises(ValueError):
            model.power_from_measurement(-1.0, {})


class TestValidation:
    def test_invalid_utilisation_rejected(self):
        with pytest.raises(ValueError):
            SpinAmmPowerModel(column_utilization=1.5)

    def test_invalid_capacitance_rejected(self):
        with pytest.raises(ValueError):
            SpinAmmPowerModel(latch_capacitance=0.0)
