"""Seed-determinism regression tests for the batched recall engine.

The same master seed must produce the same evaluation no matter how the
work is batched:

* a pipeline built twice from one seed yields a **bit-identical**
  :class:`PipelineEvaluation` whether the corpus is recalled per sample
  (``batch_size=1``), in chunks, or in one batched pass — on the ideal
  solve path where the two recall engines share their arithmetic
  exactly;
* on the default parasitic path the discrete statistics (accuracy,
  acceptance, ties, per-class accuracy, count) are identical across
  batch sizes and the mean static power agrees to solver precision;
* a :class:`MonteCarloSummary` is invariant under trial chunking,
  because the per-trial generators are derived from the master seed
  before any chunking happens.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.montecarlo import MonteCarloRunner
from repro.core.pipeline import build_pipeline
from repro.datasets.attlike import load_default_dataset


@pytest.fixture(scope="module")
def dataset():
    return load_default_dataset(
        subjects=6, images_per_subject=4, image_shape=(64, 48), seed=11
    )


def small_parameters():
    from repro.core.config import DesignParameters

    return DesignParameters(template_shape=(8, 4), num_templates=6)


def evaluate(dataset, batch_size, include_parasitics, seed=13):
    pipeline = build_pipeline(
        dataset,
        parameters=small_parameters(),
        include_parasitics=include_parasitics,
        seed=seed,
    )
    return pipeline.evaluate(dataset, batch_size=batch_size)


class TestPipelineEvaluationDeterminism:
    @pytest.mark.parametrize("batch_size", [None, 7, 32])
    def test_ideal_path_bit_identical_to_per_sample(self, dataset, batch_size):
        per_sample = evaluate(dataset, 1, include_parasitics=False)
        batched = evaluate(dataset, batch_size, include_parasitics=False)
        assert dataclasses.asdict(per_sample) == dataclasses.asdict(batched)

    @pytest.mark.parametrize("batch_size", [None, 7, 32])
    def test_parasitic_path_statistics_identical(self, dataset, batch_size):
        per_sample = evaluate(dataset, 1, include_parasitics=True)
        batched = evaluate(dataset, batch_size, include_parasitics=True)
        assert per_sample.accuracy == batched.accuracy
        assert per_sample.acceptance_rate == batched.acceptance_rate
        assert per_sample.tie_rate == batched.tie_rate
        assert per_sample.per_class_accuracy == batched.per_class_accuracy
        assert per_sample.count == batched.count
        np.testing.assert_allclose(
            per_sample.mean_static_power, batched.mean_static_power, rtol=1e-9
        )

    def test_same_seed_same_batched_evaluation(self, dataset):
        a = evaluate(dataset, None, include_parasitics=False, seed=13)
        b = evaluate(dataset, None, include_parasitics=False, seed=13)
        assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_different_seed_changes_hardware(self, dataset):
        a = evaluate(dataset, None, include_parasitics=True, seed=13)
        b = evaluate(dataset, None, include_parasitics=True, seed=14)
        assert a.mean_static_power != b.mean_static_power

    def test_amm_evaluate_matches_across_batch_sizes(self, dataset):
        pipeline = build_pipeline(
            dataset,
            parameters=small_parameters(),
            include_parasitics=False,
            seed=5,
        )
        codes = pipeline.extractor.extract_many(dataset.test_images)
        labels = dataset.test_labels
        per_sample = build_pipeline(
            dataset,
            parameters=small_parameters(),
            include_parasitics=False,
            seed=5,
        ).amm.evaluate(codes, labels, batch_size=1)
        batched = pipeline.amm.evaluate(codes, labels, batch_size=9)
        assert per_sample == batched


class TestHardwareMatchingAccuracy:
    def test_matches_pipeline_evaluation(self, dataset):
        from repro.analysis.accuracy import hardware_matching_accuracy

        pipeline = build_pipeline(
            dataset,
            parameters=small_parameters(),
            include_parasitics=False,
            seed=13,
        )
        evaluation = evaluate(dataset, None, include_parasitics=False, seed=13)
        point = hardware_matching_accuracy(pipeline, dataset, batch_size=8)
        assert point.accuracy == evaluation.accuracy
        assert point.tie_rate == evaluation.tie_rate
        assert point.parameter == 8 * 4
        assert "spin-CMOS hardware" in point.label


class TestEmptyBatchRejected:
    def test_recognise_batch_rejects_empty(self, dataset):
        import numpy as np

        pipeline = build_pipeline(
            dataset, parameters=small_parameters(), seed=13
        )
        features = pipeline.amm.crossbar.rows
        with pytest.raises(ValueError, match="must not be empty"):
            pipeline.amm.recognise_batch(np.empty((0, features), dtype=int))
        with pytest.raises(ValueError, match="must not be empty"):
            pipeline.amm.recognise_ideal_batch(np.empty((0, features), dtype=int))
        with pytest.raises(ValueError, match="must not be empty"):
            pipeline.amm.wta.convert_batch(
                np.empty((0, pipeline.amm.wta.columns))
            )


class TestMonteCarloChunkingInvariance:
    @staticmethod
    def batch_trial(generators):
        return [float(generator.random()) for generator in generators]

    @pytest.mark.parametrize("chunk_size", [None, 1, 3, 7, 16])
    def test_summary_invariant_under_chunking(self, chunk_size):
        reference = MonteCarloRunner(
            batch_trial=self.batch_trial, trials=16, seed=8
        ).run()
        chunked = MonteCarloRunner(
            batch_trial=self.batch_trial, trials=16, seed=8, chunk_size=chunk_size
        ).run()
        assert np.array_equal(reference.values, chunked.values)
        assert reference.mean == chunked.mean
        assert reference.std == chunked.std

    def test_batch_trial_matches_scalar_trial(self):
        scalar = MonteCarloRunner(lambda rng: rng.random(), trials=12, seed=9).run()
        batched = MonteCarloRunner(
            batch_trial=self.batch_trial, trials=12, seed=9, chunk_size=5
        ).run()
        assert np.array_equal(scalar.values, batched.values)

    def test_batch_trial_length_mismatch_rejected(self):
        runner = MonteCarloRunner(
            batch_trial=lambda generators: [0.0], trials=4, seed=1
        )
        with pytest.raises(ValueError):
            runner.run()

    def test_missing_trial_rejected(self):
        with pytest.raises(ValueError):
            MonteCarloRunner(trials=4, seed=1)
