"""Tests for the design parameters (Table 2)."""

import dataclasses

import pytest

from repro.core.config import DesignParameters, default_parameters


class TestDefaults:
    def test_reference_design_matches_table2(self):
        parameters = default_parameters()
        assert parameters.template_shape == (16, 8)
        assert parameters.feature_length == 128
        assert parameters.num_templates == 40
        assert parameters.template_bits == 5
        assert parameters.wta_resolution_bits == 5
        assert parameters.clock_frequency_hz == pytest.approx(100e6)
        assert parameters.delta_v == pytest.approx(30e-3)
        assert parameters.dwn_threshold_current == pytest.approx(1e-6)
        assert parameters.dwn_switching_time == pytest.approx(1.5e-9)
        assert parameters.memristor_r_min_ohm == pytest.approx(1e3)
        assert parameters.memristor_r_max_ohm == pytest.approx(32e3)
        assert parameters.free_layer_nm == (3.0, 22.0, 60.0)
        assert parameters.saturation_magnetisation_emu == pytest.approx(800.0)
        assert parameters.dwn_barrier_kt == pytest.approx(20.0)

    def test_derived_quantities(self):
        parameters = default_parameters()
        assert parameters.wta_levels == 32
        # Full-scale column current: 32 levels x 1 uA threshold = 32 uA.
        assert parameters.wta_full_scale_current == pytest.approx(32e-6)
        assert parameters.clock_period == pytest.approx(10e-9)
        assert parameters.wta_relative_resolution == pytest.approx(1 / 32)

    def test_table2_rendering_contains_key_entries(self):
        table = default_parameters().table2()
        assert table["Template size"] == "16x8, 5-bit"
        assert table["# template"] == "40"
        assert table["Ic"] == "1uA"
        assert table["Tswitch"] == "1.5ns"
        assert "1kOhm to 32kOhm" in table["Resistance range"]
        assert table["Input data rate"] == "100MHz"


class TestValidation:
    def test_invalid_resistance_ordering(self):
        with pytest.raises(ValueError):
            DesignParameters(memristor_r_min_ohm=32e3, memristor_r_max_ohm=1e3)

    def test_invalid_dom_threshold(self):
        with pytest.raises(ValueError):
            DesignParameters(dom_threshold_fraction=1.0)

    def test_invalid_template_count(self):
        with pytest.raises(ValueError):
            DesignParameters(num_templates=1)

    def test_frozen(self):
        parameters = default_parameters()
        with pytest.raises(dataclasses.FrozenInstanceError):
            parameters.delta_v = 0.1


class TestFactories:
    def test_memristor_model_reflects_range(self):
        parameters = default_parameters()
        memristor = parameters.memristor_model()
        assert memristor.g_max == pytest.approx(1e-3)
        assert memristor.g_min == pytest.approx(1 / 32e3)
        assert memristor.levels == 32

    def test_wire_parasitics_reflect_table2(self):
        parasitics = default_parameters().wire_parasitics()
        assert parasitics.resistance_per_um == pytest.approx(1.0)
        assert parasitics.capacitance_per_um == pytest.approx(0.4e-15)

    def test_dwn_config_threshold_and_window(self):
        parameters = default_parameters()
        config = parameters.dwn_config()
        assert config.threshold_current == pytest.approx(1e-6)
        assert config.evaluation_time == pytest.approx(5e-9)
        # The evaluation window must exceed the switching time.
        assert config.evaluation_time > parameters.dwn_switching_time

    def test_domain_wall_magnet_dimensions(self):
        magnet = default_parameters().domain_wall_magnet()
        assert magnet.width_nm == pytest.approx(22.0)

    def test_mtj_resistances(self):
        mtj = default_parameters().mtj()
        assert mtj.resistance(True) == pytest.approx(5e3)
        assert mtj.resistance(False) == pytest.approx(15e3)


class TestSweepHelpers:
    def test_with_resolution(self):
        parameters = default_parameters().with_resolution(3)
        assert parameters.wta_resolution_bits == 3
        assert parameters.wta_full_scale_current == pytest.approx(8e-6)

    def test_with_threshold(self):
        parameters = default_parameters().with_threshold(0.5e-6)
        assert parameters.dwn_threshold_current == pytest.approx(0.5e-6)

    def test_with_delta_v(self):
        assert default_parameters().with_delta_v(10e-3).delta_v == pytest.approx(10e-3)

    def test_with_resistance_range(self):
        parameters = default_parameters().with_resistance_range(200.0, 6400.0)
        assert parameters.memristor_r_min_ohm == pytest.approx(200.0)
        assert parameters.memristor_r_max_ohm == pytest.approx(6400.0)

    def test_sweep_helpers_do_not_mutate_original(self):
        original = default_parameters()
        original.with_resolution(3)
        assert original.wta_resolution_bits == 5
