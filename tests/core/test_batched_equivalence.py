"""Property-style equivalence tests for the batched recall engine.

The contract of :meth:`AssociativeMemoryModule.recognise_batch` is that
sample ``i`` of a batch equals ``recognise`` called in a loop over the
same inputs, *including* the consumption of every random stream (input
variation noise, latch offsets), so batched and per-sample paths can be
interleaved freely:

* on the ideal solve path (``include_parasitics=False``), with or
  without input variation, every field of every
  :class:`RecognitionResult` is **bit-identical** — winner, DOM code,
  tie flag, event counters, column currents and static power;
* on the parasitic path the batched engine replaces the per-sample
  sparse solve with a Woodbury update of one factorised network: all
  discrete fields stay identical and the analog fields agree to solver
  precision.
"""

import numpy as np
import pytest

from repro.core.amm import AssociativeMemoryModule, InputDacBank
from repro.core.wta import SpinCmosWta
from repro.crossbar.array import ResistiveCrossbar
from repro.crossbar.solver import CrossbarSolver

FEATURES = 32
TEMPLATES = 6

MODES = {
    "ideal": dict(include_parasitics=False),
    "noisy": dict(include_parasitics=False, input_variation=0.05),
    "parasitic": dict(include_parasitics=True),
    "noisy-parasitic": dict(include_parasitics=True, input_variation=0.05),
}
#: Modes in which the batched path shares the scalar arithmetic exactly.
BITWISE_MODES = ("ideal", "noisy")


def template_codes(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 32, size=(FEATURES, TEMPLATES))


def input_codes(seed: int, batch: int) -> np.ndarray:
    rng = np.random.default_rng(seed + 1000)
    return rng.integers(0, 32, size=(batch, FEATURES))


def build(seed: int, **kwargs) -> AssociativeMemoryModule:
    return AssociativeMemoryModule.from_templates(
        template_codes(seed), seed=seed, **kwargs
    )


def assert_equivalent(loop_results, batch_result, exact_analog: bool) -> None:
    assert len(batch_result) == len(loop_results)
    for index, scalar in enumerate(loop_results):
        sample = batch_result[index]
        assert sample.winner_column == scalar.winner_column
        assert sample.winner == scalar.winner
        assert sample.dom_code == scalar.dom_code
        assert sample.accepted == scalar.accepted
        assert sample.tie == scalar.tie
        assert np.array_equal(sample.codes, scalar.codes)
        assert sample.events == scalar.events
        if exact_analog:
            assert np.array_equal(sample.column_currents, scalar.column_currents)
            assert sample.static_power == scalar.static_power
        else:
            np.testing.assert_allclose(
                sample.column_currents, scalar.column_currents, rtol=1e-6
            )
            np.testing.assert_allclose(
                sample.static_power, scalar.static_power, rtol=1e-9
            )


@pytest.mark.parametrize("seed", [3, 11])
@pytest.mark.parametrize("batch", [1, 7, 64])
@pytest.mark.parametrize("mode", sorted(MODES))
def test_recognise_batch_matches_per_sample_loop(seed, batch, mode):
    inputs = input_codes(seed, batch)
    loop_amm = build(seed, **MODES[mode])
    batch_amm = build(seed, **MODES[mode])
    loop_results = [loop_amm.recognise(sample) for sample in inputs]
    batch_result = batch_amm.recognise_batch(inputs)
    assert_equivalent(loop_results, batch_result, exact_analog=mode in BITWISE_MODES)


@pytest.mark.parametrize("seed", [3, 11])
@pytest.mark.parametrize("batch", [1, 7, 64])
def test_recognise_ideal_batch_bit_identical(seed, batch):
    inputs = input_codes(seed, batch)
    loop_amm = build(seed)
    batch_amm = build(seed)
    loop_results = [loop_amm.recognise_ideal(sample) for sample in inputs]
    batch_result = batch_amm.recognise_ideal_batch(inputs)
    assert_equivalent(loop_results, batch_result, exact_analog=True)


@pytest.mark.parametrize("mode", ["ideal", "noisy", "parasitic"])
def test_random_streams_stay_in_lockstep(mode):
    """A batch must advance all generators exactly as the loop would.

    After recalling the same inputs batched on one module and looped on
    its twin, one further *scalar* recall on each must still agree in
    every discrete field — proving the latch/noise streams were consumed
    identically.
    """
    inputs = input_codes(29, 9)
    loop_amm = build(29, **MODES[mode])
    batch_amm = build(29, **MODES[mode])
    for sample in inputs:
        loop_amm.recognise(sample)
    batch_amm.recognise_batch(inputs)
    after_loop = loop_amm.recognise(inputs[0])
    after_batch = batch_amm.recognise(inputs[0])
    assert after_loop.winner_column == after_batch.winner_column
    assert after_loop.dom_code == after_batch.dom_code
    assert after_loop.tie == after_batch.tie
    assert after_loop.events == after_batch.events
    assert np.array_equal(after_loop.codes, after_batch.codes)


def test_stochastic_neurons_fall_back_to_exact_loop():
    """With stochastic DWN switching the batch defers to per-sample
    conversions, so equivalence is exact in every field by construction."""
    inputs = input_codes(7, 12)
    loop_amm = build(7, stochastic_dwn=True, include_parasitics=False)
    batch_amm = build(7, stochastic_dwn=True, include_parasitics=False)
    loop_results = [loop_amm.recognise(sample) for sample in inputs]
    batch_result = batch_amm.recognise_batch(inputs)
    assert_equivalent(loop_results, batch_result, exact_analog=True)


def test_wta_convert_batch_preserves_neuron_bookkeeping():
    """Switch counters and final neuron states match the scalar loop."""
    rng = np.random.default_rng(17)
    currents = rng.uniform(0.0, 32e-6, size=(11, 5))
    loop_wta = SpinCmosWta(columns=5, seed=101)
    batch_wta = SpinCmosWta(columns=5, seed=101)
    loop_results = [loop_wta.convert(sample) for sample in currents]
    batch_result = batch_wta.convert_batch(currents)
    for index, scalar in enumerate(loop_results):
        assert batch_result.result(index).winner == scalar.winner
        assert np.array_equal(batch_result.codes[index], scalar.codes)
        assert batch_result.events[index] == scalar.events
    for loop_neuron, batch_neuron in zip(loop_wta.neurons, batch_wta.neurons):
        assert loop_neuron.switch_count == batch_neuron.switch_count
        assert loop_neuron.state == batch_neuron.state


def test_wta_ideal_batch_matches_scalar_ideal():
    rng = np.random.default_rng(23)
    currents = rng.uniform(0.0, 32e-6, size=(13, 8))
    batch = SpinCmosWta.ideal_batch(currents, 5, 32e-6)
    for index, sample in enumerate(currents):
        scalar = SpinCmosWta.ideal(sample, 5, 32e-6)
        assert batch.result(index).winner == scalar.winner
        assert batch.result(index).dom_code == scalar.dom_code
        assert bool(batch.tie[index]) == scalar.tie
        assert np.array_equal(batch.codes[index], scalar.codes)
        assert np.array_equal(batch.survivors[index], scalar.survivors)


def test_input_dac_bank_batch_conversion_bit_identical():
    bank = InputDacBank(rows=16, bits=5, unit_conductance=1e-6, mismatch_sigma=0.1, seed=4)
    rng = np.random.default_rng(5)
    codes = rng.integers(0, 32, size=(9, 16))
    batched = bank.conductances(codes)
    assert batched.shape == (9, 16)
    for index in range(9):
        assert np.array_equal(batched[index], bank.conductances(codes[index]))


def test_input_dac_bank_batch_validation():
    bank = InputDacBank(rows=4, bits=5, unit_conductance=1e-6)
    with pytest.raises(ValueError):
        bank.conductances(np.zeros((3, 5), dtype=int))
    with pytest.raises(ValueError):
        bank.conductances(np.full((2, 4), 32))


class TestSolverBatch:
    def make_solver(self, seed: int) -> CrossbarSolver:
        rng = np.random.default_rng(seed)
        conductances = rng.uniform(1e-6, 1e-4, size=(12, 5))
        crossbar = ResistiveCrossbar(conductances, dummy_conductances=rng.uniform(0, 1e-5, size=12))
        return CrossbarSolver(crossbar)

    def test_ideal_batch_bit_identical_to_scalar(self):
        solver = self.make_solver(31)
        rng = np.random.default_rng(32)
        dacs = rng.uniform(0.0, 1e-5, size=(6, 12))
        batch = solver.solve_batch(dacs, include_parasitics=False)
        for index in range(6):
            scalar = solver.solve(dacs[index], include_parasitics=False)
            assert np.array_equal(batch.column_currents[index], scalar.column_currents)
            assert batch.supply_current[index] == scalar.supply_current
            assert batch.static_power[index] == scalar.static_power

    def test_parasitic_batch_matches_sparse_solve(self):
        solver = self.make_solver(41)
        rng = np.random.default_rng(42)
        dacs = rng.uniform(0.0, 1e-5, size=(6, 12))
        batch = solver.solve_batch(dacs, include_parasitics=True)
        for index in range(6):
            scalar = solver.solve(dacs[index], include_parasitics=True)
            np.testing.assert_allclose(
                batch.column_currents[index], scalar.column_currents, rtol=1e-8
            )
            np.testing.assert_allclose(
                batch.supply_current[index], scalar.supply_current, rtol=1e-10
            )

    def test_batch_shape_validation(self):
        solver = self.make_solver(51)
        with pytest.raises(ValueError):
            solver.solve_batch(np.zeros((3, 11)))
        with pytest.raises(ValueError):
            solver.solve_batch(np.full((2, 12), -1.0))
