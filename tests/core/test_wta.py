"""Tests for the spin-CMOS SAR winner-take-all (Figs. 10-12)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.wta import SpinCmosWta
from repro.devices.dwn import DwnConfig


def make_wta(columns=6, bits=5, full_scale=32e-6, **kwargs) -> SpinCmosWta:
    return SpinCmosWta(
        columns=columns,
        resolution_bits=bits,
        full_scale_current=full_scale,
        seed=0,
        **kwargs,
    )


class TestConstruction:
    def test_lsb_equals_threshold_in_reference_design(self):
        wta = make_wta()
        assert wta.lsb_current == pytest.approx(1e-6)
        assert wta.levels == 32

    def test_dac_current_linear_in_code(self):
        wta = make_wta()
        assert wta.dac_current(0, 8) == pytest.approx(8e-6)
        assert wta.dac_current(0, 0) == 0.0

    def test_dac_code_range_checked(self):
        wta = make_wta()
        with pytest.raises(ValueError):
            wta.dac_current(0, 32)

    def test_invalid_shapes_rejected(self):
        wta = make_wta(columns=4)
        with pytest.raises(ValueError):
            wta.convert(np.zeros(5))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SpinCmosWta(columns=0)
        with pytest.raises(ValueError):
            SpinCmosWta(columns=2, dac_gain_sigma=0.9)


class TestConversion:
    def test_codes_match_ideal_quantisation_for_well_separated_inputs(self):
        wta = make_wta(columns=5)
        currents = np.array([5.5, 12.5, 20.5, 28.5, 30.5]) * 1e-6
        result = wta.convert(currents)
        # With the per-cycle preset the hardware resolves floor(I/LSB) - 1
        # (the hysteresis costs exactly one LSB, uniformly).
        expected = np.floor(currents / wta.lsb_current).astype(int) - 1
        assert np.array_equal(result.codes, expected)

    def test_winner_is_largest_current(self):
        wta = make_wta(columns=6)
        currents = np.array([3, 30, 7, 15, 22, 9], dtype=float) * 1e-6
        result = wta.convert(currents)
        assert result.winner == 1
        assert result.dom_code == result.codes[1]
        assert not result.tie

    def test_survivors_mark_winner(self):
        wta = make_wta(columns=4)
        currents = np.array([5, 10, 25, 14], dtype=float) * 1e-6
        result = wta.convert(currents)
        assert result.survivors[2]
        assert result.survivors.sum() >= 1

    def test_tie_detection(self):
        wta = make_wta(columns=3)
        currents = np.array([20.4, 20.6, 5.0]) * 1e-6  # within one LSB
        result = wta.convert(currents)
        assert result.tie
        assert result.winner in (0, 1)

    def test_all_zero_inputs_resolve_gracefully(self):
        wta = make_wta(columns=4)
        result = wta.convert(np.zeros(4))
        assert result.dom_code == 0
        assert result.tie

    def test_currents_above_full_scale_saturate(self):
        wta = make_wta(columns=2)
        result = wta.convert(np.array([100e-6, 5e-6]))
        assert result.codes[0] == wta.levels - 1
        assert result.winner == 0

    def test_acceptance_threshold(self):
        wta = make_wta(columns=2)
        result = wta.convert(np.array([20e-6, 5e-6]))
        assert result.accepted(dom_threshold_code=8)
        assert not result.accepted(dom_threshold_code=25)

    def test_matches_ideal_reference_winner_on_random_inputs(self):
        wta = make_wta(columns=8)
        rng = np.random.default_rng(3)
        agreements = 0
        trials = 30
        for _ in range(trials):
            currents = rng.uniform(2e-6, 30e-6, 8)
            # Skip near-ties where one LSB legitimately changes the answer.
            ordered = np.sort(currents)[::-1]
            if ordered[0] - ordered[1] < 2.5e-6:
                agreements += 1
                continue
            hardware = wta.convert(currents)
            ideal = SpinCmosWta.ideal(currents, 5, 32e-6)
            if hardware.winner == ideal.winner:
                agreements += 1
        assert agreements == trials

    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=25, deadline=None)
    def test_property_winner_within_one_lsb_of_maximum(self, seed):
        wta = make_wta(columns=6)
        rng = np.random.default_rng(seed)
        currents = rng.uniform(0, 31e-6, 6)
        result = wta.convert(currents)
        assert currents.max() - currents[result.winner] <= 2 * wta.lsb_current


class TestEvents:
    def test_latch_senses_count(self):
        wta = make_wta(columns=5, bits=5)
        result = wta.convert(np.linspace(2e-6, 30e-6, 5))
        assert result.events["latch_senses"] == 5 * 5

    def test_detection_precharges_once_per_cycle(self):
        wta = make_wta(columns=5, bits=4)
        result = wta.convert(np.linspace(2e-6, 30e-6, 5))
        assert result.events["detection_precharges"] == 4

    def test_dwn_switch_count_positive(self):
        wta = make_wta(columns=3)
        result = wta.convert(np.array([30e-6, 10e-6, 2e-6]))
        assert result.events["dwn_switches"] > 0

    def test_tracking_writes_bounded_by_cycles(self):
        wta = make_wta(columns=4, bits=5)
        result = wta.convert(np.array([30e-6, 10e-6, 2e-6, 18e-6]))
        assert 1 <= result.events["tracking_writes"] <= 5


class TestNonIdealities:
    def test_dac_gain_mismatch_changes_codes(self):
        ideal = make_wta(columns=4)
        mismatched = SpinCmosWta(
            columns=4, resolution_bits=5, full_scale_current=32e-6,
            dac_gain_sigma=0.15, seed=7,
        )
        currents = np.array([30.5, 28.5, 26.5, 24.5], dtype=float) * 1e-6
        codes_ideal = ideal.convert(currents).codes
        codes_mismatched = mismatched.convert(currents).codes
        assert not np.array_equal(codes_ideal, codes_mismatched)

    def test_no_reset_degrades_conversion(self):
        currents = np.array([20.7e-6, 19.2e-6, 5e-6, 12.4e-6])
        with_reset = make_wta(columns=4, reset_neurons=True).convert(currents)
        without_reset = SpinCmosWta(
            columns=4, resolution_bits=5, full_scale_current=32e-6,
            reset_neurons=False, seed=0,
        ).convert(currents)
        # The preset version resolves to exactly floor(I/LSB)-1; the
        # no-preset version deviates for at least one column.
        expected = np.floor(currents / 1e-6).astype(int) - 1
        assert np.array_equal(with_reset.codes, expected)
        assert not np.array_equal(without_reset.codes, expected)

    def test_higher_threshold_coarser_distinction(self):
        coarse = SpinCmosWta(
            columns=2, resolution_bits=5, full_scale_current=32e-6,
            dwn_config=DwnConfig(threshold_current=4e-6), seed=0,
        )
        currents = np.array([20e-6, 18e-6])
        result = coarse.convert(currents)
        # A 4 uA dead zone cannot separate inputs 2 uA apart reliably; the
        # codes end up lower than the ideal values.
        assert result.codes[0] <= 19


class TestIdealReference:
    def test_ideal_winner_is_argmax(self):
        currents = np.array([5e-6, 25e-6, 10e-6])
        result = SpinCmosWta.ideal(currents, 5, 32e-6)
        assert result.winner == 1
        assert result.dom_code == 25

    def test_ideal_tie_flag(self):
        currents = np.array([20.1e-6, 20.2e-6])
        result = SpinCmosWta.ideal(currents, 5, 32e-6)
        assert result.tie

    def test_ideal_validates_arguments(self):
        with pytest.raises(ValueError):
            SpinCmosWta.ideal(np.array([1e-6]), 0, 32e-6)
