"""Property-based fleet invariants over random event sequences.

The chaos matrix pins hand-picked transitions; this suite drives
*random* sequences of fleet events — join, kill, drain, readmit,
respec-to-the-same-spec — interleaved with recall batches, and asserts
the two control-plane invariants after every batch:

* **bit-identity** — every batch result equals the serial reference
  exactly (the ideal path has no stacked-LAPACK shape sensitivity, so
  any difference is a routing/transport bug, not numerics);
* **routing discipline** — no shard is ever routed to a drained or dead
  replica: its fleet-side ``rows_served`` counter is frozen for as long
  as it is out of routing (re-spec canary recalls are control traffic
  and deliberately bypass routing, which is why the assertion watches
  the dispatch counter, not the worker's command counter).

Each example boots its own three worker agents (two seeded members, one
joinable) so killed workers never leak between examples.  Event
semantics are guarded — never kill or drain below one routable replica
— because a fleet with no members *correctly* refuses batches, which is
a different property (pinned in ``test_fleet.py``/faults) from the
invariance under survivable events exercised here.
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip("hypothesis", reason="property suite needs hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import FleetSupervisor, WorkerServer
from tests.backends.strategies import build_test_amm
from tests.backends.test_equivalence import assert_results_equal
from tests.backends.test_remote import wait_until

#: Shared geometry for every example (module construction is the
#: expensive part; the control plane is geometry-agnostic).
FEATURES = 16
TEMPLATES = 4
AMM = build_test_amm(FEATURES, TEMPLATES, seed=11)
_ENGINE = AMM.solver.batch_engine
_ENGINE.prepare(AMM.include_parasitics)
CHUNK = _ENGINE.chunk_size

CODES = (np.arange(12 * FEATURES, dtype=np.int64).reshape(12, FEATURES) * 5) % 32
SEEDS = np.arange(12, dtype=np.int64) + 400
REFERENCE = AMM.recognise_batch_seeded(CODES, SEEDS)

EVENTS = st.lists(
    st.tuples(
        st.sampled_from(["batch", "join", "kill", "drain", "readmit", "respec"]),
        st.integers(min_value=0, max_value=2),
    ),
    min_size=1,
    max_size=8,
)


class _Driver:
    """Applies a random event sequence to a real fleet, with guards."""

    def __init__(self):
        self.servers = [WorkerServer().start() for _ in range(3)]
        # Cached: a closed listener cannot answer getsockname() any more.
        self.addresses = [server.address for server in self.servers]
        self.joined = {0, 1}
        self.admitted = {0, 1}
        self.up = {0, 1, 2}
        self.fleet = FleetSupervisor(
            AMM,
            worker_addresses=[self.addresses[0], self.addresses[1]],
            min_shard_size=2,
            chunk_size=CHUNK,
            heartbeat_interval=0.1,
            backoff_base=0.02,
            backoff_max=0.2,
            connect_timeout=2.0,
            io_timeout=10.0,
        ).prepare()

    def routable(self, excluding=None) -> set:
        members = {
            index
            for index in self.joined & self.admitted & self.up
        }
        members.discard(excluding)
        return members

    def apply(self, event: str, index: int) -> None:
        address = self.addresses[index]
        if event == "batch":
            self.check_batch()
        elif event == "join":
            # Prefer admitting the never-seen worker; otherwise readmit.
            target = 2 if 2 not in self.joined and 2 in self.up else index
            if target in self.up:
                self.fleet.join(self.addresses[target])
                self.joined.add(target)
                self.admitted.add(target)
        elif event == "kill":
            if index in self.up and self.routable(excluding=index):
                self.servers[index].close()
                self.up.discard(index)
                if index in self.joined:
                    replica = self.fleet._find(address)
                    assert wait_until(lambda: not replica.link.alive, timeout=10.0)
        elif event == "drain":
            if (
                index in self.joined
                and index in self.admitted
                and self.routable(excluding=index)
            ):
                self.fleet.drain(address, timeout=10.0)
                self.admitted.discard(index)
        elif event == "readmit":
            if index in self.joined and index not in self.admitted and index in self.up:
                self.fleet.join(address)
                self.admitted.add(index)
        elif event == "respec":
            if self.routable():
                report = self.fleet.respec(drain_timeout=10.0)
                outcomes = {entry["address"]: entry["outcome"] for entry in report}
                for member in self.joined:
                    host, port = self.addresses[member]
                    outcome = outcomes[f"{host}:{port}"]
                    if member in self.up:
                        assert outcome == "updated"
                    else:
                        assert outcome in ("skipped-dead", "lost")

    def check_batch(self) -> None:
        # Snapshot every out-of-routing replica's dispatch counter …
        frozen = {}
        for member in self.joined:
            if member in self.admitted and member in self.up:
                continue
            replica = self.fleet._find(self.addresses[member])
            frozen[member] = replica.rows_served
        result = self.fleet.recall_batch_seeded(CODES, SEEDS)
        assert_results_equal(result, REFERENCE)
        # … and assert not one shard row landed on any of them.
        for member, rows_before in frozen.items():
            replica = self.fleet._find(self.addresses[member])
            assert replica.rows_served == rows_before, (
                f"shard routed to non-routable replica {replica.address}"
            )

    def close(self) -> None:
        self.fleet.close()
        for server in self.servers:
            server.close()


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(events=EVENTS)
def test_random_fleet_events_preserve_bits_and_routing(events):
    driver = _Driver()
    try:
        for event, index in events:
            driver.apply(event, index)
        # Always end serving: whatever the sequence did, the fleet still
        # answers — bit-identically — from whoever remains routable.
        driver.check_batch()
        assert driver.fleet.fleet_stats()["routable"] == len(driver.routable())
    finally:
        driver.close()
