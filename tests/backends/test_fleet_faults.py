"""Chaos matrix for the fleet control plane.

Every scenario drives a real :class:`~repro.backends.fleet
.FleetSupervisor` against one direct worker (the survivor) and one
worker behind a :class:`~tests.backends.chaos.ChaosProxy`, injects a
fault *during* a control-plane transition, and asserts two things: the
fleet recovers (the event is absorbed, not escalated), and the batch
results stay bit-identical to the serial reference — membership events
move capacity, never correctness.

The matrix:

* **kill-during-drain** — the drained replica dies while its in-flight
  shard is still being waited out; the shard retries on the survivor,
  the drain returns, and the worker readmits cleanly after restart.
* **join-then-kill-the-joiner** — a worker joins a running fleet, takes
  traffic, then dies; its shards fail over to the original member.
* **re-spec with one partitioned replica** — the rolling spec push hits
  a partitioned replica: it is reported lost, the roll completes on the
  reachable members, and the healed replica reconnects with the *new*
  spec.
* **torn JOIN frame** — a control-socket client tears mid-frame; the
  control server survives and keeps serving admin verbs.

Plus the slow / partitioned / half-open / dead distinction: with the
``pause()``/``resume()`` primitive, all four liveness shapes are pinned
as individually different behaviours.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.backends import FleetAdminClient, FleetSupervisor, WorkerServer, wire
from tests.backends.chaos import ChaosProxy
from tests.backends.test_equivalence import assert_results_equal
from tests.backends.test_remote import wait_until


@pytest.fixture()
def survivor_and_proxied(backend_amm):
    """One direct worker, one behind a chaos proxy, and a fast fleet.

    The fleet's io budget is deliberately short (2.5 s) so partition and
    half-open scenarios resolve inside the test budget; the proxy delays
    used by the scenarios stay well under it (slow != dead).
    """
    engine = backend_amm.solver.batch_engine
    engine.prepare(backend_amm.include_parasitics)
    survivor = WorkerServer().start()
    upstream = WorkerServer().start()
    proxy = ChaosProxy(upstream.address)
    fleet = FleetSupervisor(
        backend_amm,
        worker_addresses=[survivor.address, proxy.address],
        min_shard_size=2,
        chunk_size=engine.chunk_size,
        heartbeat_interval=0.1,
        backoff_base=0.02,
        backoff_max=0.2,
        connect_timeout=2.0,
        io_timeout=2.5,
        control=("127.0.0.1", 0),
    ).prepare()
    yield fleet, survivor, upstream, proxy
    fleet.close()
    proxy.close()
    upstream.close()
    survivor.close()


class TestKillDuringDrain:
    def test_drain_survives_replica_death_mid_flight(
        self,
        survivor_and_proxied,
        request_codes,
        request_seeds,
        reference_results,
    ):
        fleet, survivor, upstream, proxy = survivor_and_proxied
        proxied = fleet._find(proxy.address)
        proxy.delay(0.4)  # keep the proxied shard in flight long enough

        batch_result = {}

        def run_batch():
            batch_result["value"] = fleet.recall_batch_seeded(
                request_codes, request_seeds
            )

        batch = threading.Thread(target=run_batch)
        batch.start()
        # Wait until the proxied replica actually holds a shard …
        assert wait_until(lambda: proxied.link.lock.locked(), timeout=5.0)

        drain_done = threading.Event()
        drain_error = {}

        def run_drain():
            try:
                fleet.drain(proxy.address, timeout=10.0)
            except Exception as error:  # pragma: no cover - fails the test
                drain_error["value"] = error
            finally:
                drain_done.set()

        drainer = threading.Thread(target=run_drain)
        drainer.start()
        # … then kill it while the drain is waiting the shard out.
        proxy.refuse(kill_existing=True)
        batch.join(timeout=30.0)
        drainer.join(timeout=30.0)
        assert drain_done.is_set() and not drain_error
        # The dying shard failed over to the survivor: same bits.
        assert_results_equal(batch_result["value"], reference_results)
        assert fleet.retried_shards >= 1
        assert proxied.state in ("dead", "drained")  # dead link, excluded

        # Recovery: worker returns, supervisor reconnects, readmit works.
        proxy.accept()
        proxy.delay(0.0)
        assert wait_until(lambda: proxied.link.alive, timeout=10.0)
        assert fleet.join(proxy.address)["state"] == "live"
        result = fleet.recall_batch_seeded(request_codes, request_seeds)
        assert_results_equal(result, reference_results)


class TestJoinThenKillTheJoiner:
    def test_joiner_death_fails_over_to_original_member(
        self, backend_amm, request_codes, request_seeds, reference_results
    ):
        engine = backend_amm.solver.batch_engine
        engine.prepare(backend_amm.include_parasitics)
        anchor = WorkerServer().start()
        upstream = WorkerServer().start()
        proxy = ChaosProxy(upstream.address)
        fleet = FleetSupervisor(
            backend_amm,
            worker_addresses=[anchor.address],
            min_shard_size=2,
            chunk_size=engine.chunk_size,
            heartbeat_interval=0.1,
            backoff_base=0.02,
            backoff_max=0.2,
            connect_timeout=2.0,
            io_timeout=2.5,
        ).prepare()
        try:
            assert fleet.join(proxy.address)["state"] == "live"
            joiner = fleet._find(proxy.address)
            # The joiner takes traffic …
            result = fleet.recall_batch_seeded(request_codes, request_seeds)
            assert_results_equal(result, reference_results)
            assert wait_until(lambda: upstream.commands_served > 0)
            # … then dies; routing falls back to the original member.
            proxy.refuse(kill_existing=True)
            assert wait_until(lambda: not joiner.link.alive, timeout=10.0)
            result = fleet.recall_batch_seeded(request_codes, request_seeds)
            assert_results_equal(result, reference_results)
            assert fleet.fleet_stats()["counters"]["joins"] == 1
        finally:
            fleet.close()
            proxy.close()
            upstream.close()
            anchor.close()


class TestRespecWithPartitionedReplica:
    def test_partitioned_replica_reported_lost_then_respecced_on_heal(
        self,
        survivor_and_proxied,
        request_codes,
        request_seeds,
        reference_results,
    ):
        fleet, survivor, upstream, proxy = survivor_and_proxied
        proxied = fleet._find(proxy.address)
        proxy.partition()
        report = {f"{entry['address']}": entry["outcome"] for entry in fleet.respec()}
        survivor_key = f"{survivor.address[0]}:{survivor.address[1]}"
        proxied_key = f"{proxy.address[0]}:{proxy.address[1]}"
        assert report[survivor_key] == "updated"
        assert report[proxied_key] == "lost"
        assert fleet.spec_version == 1
        # The fleet keeps serving on the updated member, bit-identically.
        result = fleet.recall_batch_seeded(request_codes, request_seeds)
        assert_results_equal(result, reference_results)
        # Heal: the supervisor reconnects *with the new spec* and the
        # replica rejoins routing — same bits from both members.
        proxy.heal()
        assert wait_until(lambda: proxied.link.alive, timeout=10.0)
        served_before = upstream.commands_served
        result = fleet.recall_batch_seeded(request_codes, request_seeds)
        assert_results_equal(result, reference_results)
        assert wait_until(lambda: upstream.commands_served > served_before)


class TestTornJoinFrame:
    def test_control_server_survives_torn_frame(self, fleet_backend):
        address = fleet_backend.control_address
        sock = socket.create_connection(address, timeout=5.0)
        try:
            sock.settimeout(5.0)
            wire.send_frame(sock, wire.HELLO, {"protocol": wire.PROTOCOL_VERSION})
            kind, _, _, _ = wire.recv_frame(sock)
            assert kind == wire.HELLO
            # A JOIN frame whose prefix promises more header bytes than
            # will ever arrive: the handler sees EOF mid-frame.
            prefix = struct.Struct("<4sBHIQ").pack(
                wire.MAGIC, wire.JOIN, wire.PROTOCOL_VERSION, 512, 0
            )
            sock.sendall(prefix + b'{"address": "127.')
        finally:
            sock.close()
        # The control plane is unaffected: new admin connections work and
        # the fleet still serves both verbs and traffic.
        with FleetAdminClient(address) as admin:
            assert admin.status()["routable"] == 2

    def test_control_server_survives_garbage_magic(self, fleet_backend):
        sock = socket.create_connection(fleet_backend.control_address, timeout=5.0)
        try:
            sock.sendall(b"GET / HTTP/1.1\r\n\r\n" + b"\x00" * 16)
        finally:
            sock.close()
        with FleetAdminClient(fleet_backend.control_address) as admin:
            assert admin.status()["routable"] == 2


class TestLivenessShapes:
    """Slow, partitioned, half-open and dead are four pinned behaviours."""

    def test_slow_is_not_dead(
        self, survivor_and_proxied, request_codes, request_seeds, reference_results
    ):
        fleet, _, _, proxy = survivor_and_proxied
        proxy.delay(0.3)  # well under io_timeout
        result = fleet.recall_batch_seeded(request_codes, request_seeds)
        assert_results_equal(result, reference_results)
        proxied = fleet._find(proxy.address)
        assert proxied.link.alive
        assert fleet.reconnects == 0 and fleet.retried_shards == 0

    def test_partition_kills_in_flight_shard_and_retries(
        self, survivor_and_proxied, request_codes, request_seeds, reference_results
    ):
        fleet, _, _, proxy = survivor_and_proxied
        proxy.partition()
        # The in-flight shard times out (io budget), fails over to the
        # survivor, and the link is declared dead — unlike mere slowness.
        result = fleet.recall_batch_seeded(request_codes, request_seeds)
        assert_results_equal(result, reference_results)
        assert fleet.retried_shards >= 1
        proxied = fleet._find(proxy.address)
        assert not proxied.link.alive

    def test_half_open_reconnect_stalls_without_hanging_the_fleet(
        self, survivor_and_proxied, request_codes, request_seeds, reference_results
    ):
        fleet, _, _, proxy = survivor_and_proxied
        proxied = fleet._find(proxy.address)
        # Kill the replica, then turn the proxy half-open: reconnect
        # dials *succeed* (SYN accepted) but the HELLO reply never comes
        # — the third liveness shape, distinct from refused (dial fails
        # fast) and partitioned (established pipe stalls).
        proxy.refuse(kill_existing=True)
        assert wait_until(lambda: not proxied.link.alive, timeout=10.0)
        proxy.accept()
        proxy.pause()
        reconnects_before = fleet.reconnects
        # The fleet keeps serving from the survivor throughout; the
        # half-open link never comes back while paused.
        for _ in range(2):
            result = fleet.recall_batch_seeded(request_codes, request_seeds)
            assert_results_equal(result, reference_results)
        assert fleet.reconnects == reconnects_before
        assert not proxied.link.alive
        # resume() bridges the stalled dials: the pending HELLO completes
        # (late but intact) and the replica rejoins routing.
        proxy.resume()
        assert wait_until(lambda: proxied.link.alive, timeout=15.0)
        result = fleet.recall_batch_seeded(request_codes, request_seeds)
        assert_results_equal(result, reference_results)

    def test_dead_dial_fails_fast(self, survivor_and_proxied):
        fleet, _, _, proxy = survivor_and_proxied
        proxied = fleet._find(proxy.address)
        proxy.refuse(kill_existing=True)
        assert wait_until(lambda: not proxied.link.alive, timeout=10.0)
        # Refused dials cycle quickly (exponential backoff from a tiny
        # base), so reconnect *attempts* keep happening — the supervisor
        # is not stuck the way a half-open dial would leave a naive one.
        proxy.accept()
        assert wait_until(lambda: proxied.link.alive, timeout=10.0)
        assert fleet.reconnects >= 1
