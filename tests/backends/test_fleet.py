"""Fleet control-plane tests: weighted routing, membership, re-spec, admin.

The chaos (proxy-injected) failure modes live in
``test_fleet_faults.py`` and the randomised event-sequence invariants in
``test_fleet_properties.py``; this file pins the happy path — the
:func:`~repro.backends.fleet.weighted_shards` partition contract,
bit-identical equivalence with the serial reference, drain/join
semantics, rolling re-spec, EWMA-weighted routing, the control socket
(admin client and CLI verb), and registry/serving integration.
"""

from __future__ import annotations

import socket
import threading

import numpy as np
import pytest

from repro.backends import (
    FleetAdminClient,
    FleetSupervisor,
    contiguous_shards,
    create_backend,
    weighted_shards,
    wire,
)
from repro.backends.fleet import FleetMembershipError, ReplicaDrainedError
from tests.backends.chaos import ChaosProxy
from tests.backends.test_equivalence import assert_results_equal
from tests.backends.test_remote import wait_until


class TestWeightedShards:
    def test_equal_weights_match_contiguous_rule(self):
        for count in (7, 24, 100):
            for workers in (1, 2, 3, 5):
                equal = weighted_shards(count, [1.0] * workers, 4)
                assert equal == contiguous_shards(count, workers, 4)

    def test_sizes_follow_weights(self):
        shards = weighted_shards(40, [3.0, 1.0], 2)
        sizes = [end - begin for begin, end in shards]
        assert sizes == [30, 10]

    def test_exact_partition_and_minimum_size(self):
        for weights in ([5.0, 1.0, 1.0], [0.1, 10.0], [2.0, 2.0, 1.0, 1.0]):
            for count in (2, 3, 8, 11, 64):
                shards = weighted_shards(count, weights, 2)
                assert shards[0][0] == 0 and shards[-1][1] == count
                for (_, left_end), (right_begin, _) in zip(shards, shards[1:]):
                    assert left_end == right_begin
                if len(shards) > 1:
                    assert all(end - begin >= 2 for begin, end in shards)

    def test_small_batches_stay_whole(self):
        assert weighted_shards(3, [1.0, 9.0], 2) == [(0, 3)]
        assert weighted_shards(1, [1.0, 1.0, 1.0], 1) == [(0, 1)]

    def test_extreme_skew_cannot_starve_a_shard(self):
        shards = weighted_shards(8, [1e9, 1.0], 4)
        assert [end - begin for begin, end in shards] == [4, 4]

    def test_empty_and_invalid_inputs(self):
        assert weighted_shards(0, [1.0], 4) == []
        with pytest.raises(ValueError):
            weighted_shards(8, [], 4)
        with pytest.raises(ValueError):
            weighted_shards(8, [1.0], 0)


class TestFleetEquivalence:
    def test_recall_matches_serial_reference(
        self, fleet_backend, request_codes, request_seeds, reference_results
    ):
        result = fleet_backend.recall_batch_seeded(request_codes, request_seeds)
        assert_results_equal(result, reference_results)

    def test_solve_batch_matches_solver(self, fleet_backend, backend_amm, request_codes):
        conductances = backend_amm.input_dacs.conductances(request_codes)
        reference = backend_amm.solver.solve_batch(conductances)
        solution = fleet_backend.solve_batch(conductances)
        np.testing.assert_allclose(
            solution.column_currents, reference.column_currents, rtol=1e-12
        )
        np.testing.assert_allclose(
            solution.supply_current, reference.supply_current, rtol=1e-12
        )

    def test_capabilities_and_context_manager(self, fleet_backend):
        capabilities = fleet_backend.capabilities()
        assert capabilities.name == "fleet"
        assert capabilities.workers == 2
        assert capabilities.shards_batches and capabilities.escapes_gil


class TestMembership:
    def test_drained_replica_serves_no_shard(
        self,
        fleet_backend,
        worker_servers,
        request_codes,
        request_seeds,
        reference_results,
    ):
        target = worker_servers[1]
        info = fleet_backend.drain(target.address)
        assert info["state"] == "drained"
        served_before = target.commands_served
        for _ in range(3):
            result = fleet_backend.recall_batch_seeded(request_codes, request_seeds)
            assert_results_equal(result, reference_results)
        assert target.commands_served == served_before
        # Readmission is instant: the link never disconnected.
        assert fleet_backend.join(target.address)["state"] == "live"
        fleet_backend.recall_batch_seeded(request_codes, request_seeds)
        assert wait_until(lambda: target.commands_served > served_before)

    def test_drained_exchange_refused_before_any_bytes(
        self, fleet_backend, worker_servers
    ):
        replica = fleet_backend._find(worker_servers[0].address)
        fleet_backend.drain(replica.address)
        with pytest.raises(ReplicaDrainedError):
            replica.exchange(wire.PING, None, None)
        # Control traffic still flows on the drained link.
        kind, _, _ = replica.exchange(wire.PING, None, None, control=True)
        assert kind == wire.PONG

    def test_join_admits_new_worker_under_running_fleet(
        self, fleet_backend, request_codes, request_seeds, reference_results
    ):
        from repro.backends import WorkerServer

        joiner = WorkerServer().start()
        try:
            info = fleet_backend.join(joiner.address)
            assert info["state"] == "live" and info["origin"] == "joined"
            assert len(fleet_backend.fleet_stats()["replicas"]) == 3
            result = fleet_backend.recall_batch_seeded(request_codes, request_seeds)
            assert_results_equal(result, reference_results)
            assert wait_until(lambda: joiner.commands_served > 0)
        finally:
            joiner.close()

    def test_join_unreachable_worker_raises_and_stays_out(self, fleet_backend):
        probe = socket.create_server(("127.0.0.1", 0))
        address = probe.getsockname()[:2]
        probe.close()  # nothing listens here any more
        with pytest.raises((ConnectionError, OSError)):
            fleet_backend.join(address)
        assert len(fleet_backend.fleet_stats()["replicas"]) == 2

    def test_unknown_address_raises_membership_error(self, fleet_backend):
        with pytest.raises(FleetMembershipError):
            # Deliberately unreachable — never bound, so no port race.
            fleet_backend.drain("127.0.0.1:1")  # repro-lint: disable=TEST001
        assert isinstance(FleetMembershipError("x"), ValueError)


class TestRespec:
    def test_rolling_respec_same_spec_is_invisible(
        self, fleet_backend, request_codes, request_seeds, reference_results
    ):
        before = fleet_backend.recall_batch_seeded(request_codes, request_seeds)
        report = fleet_backend.respec()
        assert [entry["outcome"] for entry in report] == ["updated", "updated"]
        assert fleet_backend.spec_version == 1
        after = fleet_backend.recall_batch_seeded(request_codes, request_seeds)
        assert_results_equal(before, reference_results)
        assert_results_equal(after, reference_results)

    def test_respec_preserves_drained_exclusion(self, fleet_backend, worker_servers):
        fleet_backend.drain(worker_servers[1].address)
        fleet_backend.respec()
        stats = fleet_backend.fleet_stats()
        states = {entry["address"]: entry["state"] for entry in stats["replicas"]}
        host, port = worker_servers[1].address
        assert states[f"{host}:{port}"] == "drained"
        assert stats["routable"] == 1


class TestWeightedRouting:
    def test_slow_replica_gets_fewer_rows(
        self, backend_amm, request_codes, request_seeds, reference_results
    ):
        from repro.backends import WorkerServer

        engine = backend_amm.solver.batch_engine
        engine.prepare(backend_amm.include_parasitics)
        fast, slow = WorkerServer().start(), WorkerServer().start()
        proxy = ChaosProxy(slow.address)
        proxy.delay(0.08)
        fleet = FleetSupervisor(
            backend_amm,
            worker_addresses=[fast.address, proxy.address],
            min_shard_size=2,
            chunk_size=engine.chunk_size,
            heartbeat_interval=0.5,
            io_timeout=20.0,
            latency_alpha=0.5,
        ).prepare()
        try:
            for _ in range(4):
                result = fleet.recall_batch_seeded(request_codes, request_seeds)
                assert_results_equal(result, reference_results)
            fast_replica = fleet._find(fast.address)
            slow_replica = fleet._find(proxy.address)
            # Slow is not dead: the link stayed alive the whole time …
            assert slow_replica.link.alive and fleet.reconnects == 0
            # … but its measured per-row latency dwarfs the fast one's,
            # so routing weight (and therefore rows) shifted away.
            assert slow_replica.ewma_row_seconds > fast_replica.ewma_row_seconds
            assert fast_replica.rows_served > slow_replica.rows_served
            stats = fleet.fleet_stats()
            weights = {
                entry["address"]: entry["weight"] for entry in stats["replicas"]
            }
            fast_key = f"{fast.address[0]}:{fast.address[1]}"
            slow_key = f"{proxy.address[0]}:{proxy.address[1]}"
            assert weights[fast_key] > weights[slow_key]
        finally:
            fleet.close()
            proxy.close()
            fast.close()
            slow.close()


class TestControlSocket:
    def test_status_join_drain_respec_via_admin_client(
        self, fleet_backend, worker_servers
    ):
        with FleetAdminClient(fleet_backend.control_address) as admin:
            status = admin.status()
            assert status["routable"] == 2
            assert status["spec_version"] == 0
            assert {entry["state"] for entry in status["replicas"]} == {"live"}
            host, port = worker_servers[1].address
            drained = admin.drain(f"{host}:{port}")
            assert drained["state"] == "drained"
            assert admin.status()["routable"] == 1
            rejoined = admin.join(f"{host}:{port}")
            assert rejoined["state"] == "live"
            report = admin.respec()
            assert [entry["outcome"] for entry in report] == ["updated", "updated"]
            assert admin.status()["counters"]["drains"] == 1

    def test_admin_errors_are_transported_types(self, fleet_backend):
        with FleetAdminClient(fleet_backend.control_address) as admin:
            with pytest.raises(ValueError):
                # Not a member, never bound — no port race.
                admin.drain("127.0.0.1:1")  # repro-lint: disable=TEST001
            # The connection survives a failed verb.
            assert admin.status()["routable"] == 2

    def test_version_skew_rejected_cleanly(self, fleet_backend):
        sock = socket.create_connection(fleet_backend.control_address, timeout=5.0)
        try:
            sock.settimeout(5.0)
            wire.send_frame(sock, wire.HELLO, {"protocol": 999})
            kind, _, header, _ = wire.recv_frame(sock)
            assert kind == wire.ERROR
            assert header["type"] == "ProtocolVersionError"
        finally:
            sock.close()


class TestRegistryAndServing:
    def test_registry_creates_fleet_backend(self, backend_amm, worker_servers):
        engine = backend_amm.solver.batch_engine
        engine.prepare(backend_amm.include_parasitics)
        backend = create_backend(
            "fleet",
            backend_amm,
            worker_addresses=[server.address for server in worker_servers],
            chunk_size=engine.chunk_size,
        )
        try:
            assert isinstance(backend, FleetSupervisor)
            assert backend.prepare() is backend.prepare()  # idempotent
        finally:
            backend.close()

    def test_service_stats_surface_fleet_section(
        self, fleet_backend, backend_amm, request_codes, request_seeds
    ):
        from repro.serving import RecognitionService

        service = RecognitionService(
            backend_amm, max_batch_size=16, max_wait=0.001, backend=fleet_backend
        )
        try:
            futures = [
                service.submit(code, seed)
                for code, seed in zip(request_codes[:4], request_seeds[:4])
            ]
            for future in futures:
                future.result(timeout=30)
            stats = service.stats()
            assert "fleet" in stats
            assert stats["fleet"]["routable"] == 2
            assert len(stats["fleet"]["replicas"]) == 2
        finally:
            service.close()

    def test_cli_admin_status_and_drain(self, fleet_backend, worker_servers, capsys):
        from repro.cli import main

        host, port = fleet_backend.control_address
        control = f"{host}:{port}"
        assert main(["admin", "status", "--control", control]) == 0
        output = capsys.readouterr().out
        assert "live" in output and "spec version 0" in output
        worker_host, worker_port = worker_servers[1].address
        assert main(
            ["admin", "drain", f"{worker_host}:{worker_port}", "--control", control]
        ) == 0
        assert "drained" in capsys.readouterr().out
        assert main(["admin", "respec", "--control", control]) == 0
        assert "updated" in capsys.readouterr().out


class TestThreadDiscipline:
    def test_close_joins_supervisor_and_control_threads(
        self, backend_amm, worker_servers
    ):
        engine = backend_amm.solver.batch_engine
        engine.prepare(backend_amm.include_parasitics)
        baseline = set(threading.enumerate())
        fleet = FleetSupervisor(
            backend_amm,
            worker_addresses=[server.address for server in worker_servers],
            chunk_size=engine.chunk_size,
            heartbeat_interval=0.1,
            control=("127.0.0.1", 0),
        ).prepare()
        fleet.close()
        fleet.close()  # idempotent
        assert wait_until(lambda: set(threading.enumerate()) <= baseline)
