"""Process-pool fault handling: crashes fail cleanly, pools self-heal.

A worker killed mid-batch must (a) fail its in-flight requests with the
retryable :class:`~repro.backends.base.WorkerCrashedError` rather than
hanging, (b) be respawned onto the same shared-memory blocks, and (c)
leave the pool fully serviceable — no poisoned queue, no lost capacity.
These tests use a dedicated small pool (not the shared session fixture)
because they deliberately kill its workers.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.backends import ProcessPoolBackend, WorkerCrashedError
from tests.backends.conftest import build_amm


@pytest.fixture(scope="module")
def fault_amm():
    return build_amm(include_parasitics=True, input_variation=0.05)


@pytest.fixture()
def pool(fault_amm):
    backend = ProcessPoolBackend(
        fault_amm, workers=2, min_shard_size=4, max_batch_size=64
    ).prepare()
    yield backend
    backend.close()


def kill_worker(backend, index=0):
    pid = backend._handles[index].process.pid
    os.kill(pid, signal.SIGKILL)
    # Give the OS a moment to reap so liveness checks see the death.
    deadline = time.monotonic() + 5.0
    while backend._handles[index].process.is_alive() and time.monotonic() < deadline:
        time.sleep(0.01)


class TestWorkerCrash:
    def test_killed_worker_fails_retryable_and_respawns(
        self, pool, fault_amm, request_codes, request_seeds
    ):
        reference = fault_amm.recognise_batch_seeded(request_codes, request_seeds)
        kill_worker(pool, index=0)
        with pytest.raises(WorkerCrashedError) as excinfo:
            pool.recall_batch_seeded(request_codes, request_seeds)
        assert excinfo.value.retryable
        assert pool.respawns >= 1
        # The retry succeeds on the healed pool with identical results.
        result = pool.recall_batch_seeded(request_codes, request_seeds)
        assert np.array_equal(result.winner_column, reference.winner_column)
        assert np.array_equal(result.codes, reference.codes)

    def test_kill_during_flight_does_not_hang(
        self, pool, fault_amm, request_codes, request_seeds
    ):
        """SIGKILL racing an in-flight batch either completes or fails fast."""
        import threading

        big_codes = np.tile(request_codes, (12, 1))
        big_seeds = np.arange(big_codes.shape[0], dtype=np.int64)
        pid = pool._handles[0].process.pid
        killer = threading.Thread(
            target=lambda: (time.sleep(0.005), os.kill(pid, signal.SIGKILL))
        )
        killer.start()
        start = time.monotonic()
        try:
            pool.recall_batch_seeded(big_codes, big_seeds)
        except WorkerCrashedError:
            pass
        killer.join()
        assert time.monotonic() - start < 30.0, "crash handling must not hang"
        # The pool serves the next request correctly regardless of the race.
        reference = fault_amm.recognise_batch_seeded(request_codes, request_seeds)
        result = pool.recall_batch_seeded(request_codes, request_seeds)
        assert np.array_equal(result.winner_column, reference.winner_column)

    def test_both_workers_killed_pool_recovers(
        self, pool, fault_amm, request_codes, request_seeds
    ):
        kill_worker(pool, index=0)
        kill_worker(pool, index=1)
        with pytest.raises(WorkerCrashedError):
            pool.recall_batch_seeded(request_codes, request_seeds)
        # One dispatch may only touch the shards' workers; drain any
        # remaining dead worker with a second attempt before asserting
        # full health.
        try:
            pool.recall_batch_seeded(request_codes, request_seeds)
        except WorkerCrashedError:
            pass
        reference = fault_amm.recognise_batch_seeded(request_codes, request_seeds)
        result = pool.recall_batch_seeded(request_codes, request_seeds)
        assert np.array_equal(result.winner_column, reference.winner_column)
        assert pool.respawns >= 2

    def test_crash_does_not_poison_other_worker(
        self, pool, fault_amm, request_codes, request_seeds
    ):
        """After a crash+respawn, small batches (single shard) keep working
        on whichever worker the free queue hands out."""
        kill_worker(pool, index=1)
        with pytest.raises(WorkerCrashedError):
            pool.recall_batch_seeded(request_codes, request_seeds)
        reference = fault_amm.recognise_batch_seeded(request_codes[:3], request_seeds[:3])
        for _ in range(4):  # cycle through both workers
            result = pool.recall_batch_seeded(request_codes[:3], request_seeds[:3])
            assert np.array_equal(result.winner_column, reference.winner_column)


class TestServiceIntegration:
    def test_served_crash_maps_to_retryable_error(self, fault_amm, request_codes):
        """Through the serving stack: in-flight requests fail with the
        retryable error and the service keeps serving."""
        from repro.serving import RecognitionService

        service = RecognitionService(
            fault_amm,
            max_batch_size=8,
            max_wait=0.0,
            workers=1,
            backend="processes",
        )
        try:
            warm = service.recognise(request_codes[0], seed=1, timeout=60.0)
            backend = service.pool.backend
            os.kill(backend._handles[0].process.pid, signal.SIGKILL)
            futures = [
                service.submit(request_codes[index % 8], seed=index)
                for index in range(4)
            ]
            outcomes = {"ok": 0, "crashed": 0}
            for future in futures:
                try:
                    future.result(timeout=60.0)
                    outcomes["ok"] += 1
                except WorkerCrashedError:
                    outcomes["crashed"] += 1
            assert outcomes["crashed"] >= 1
            # The pool healed: a retry of the same request succeeds and
            # matches the pre-crash answer.
            again = service.recognise(request_codes[0], seed=1, timeout=60.0)
            assert again.winner_column == warm.winner_column
            assert again.dom_code == warm.dom_code
        finally:
            service.close()
