"""Shared hypothesis strategies for the cross-backend equivalence suite.

One definition of "a random recall workload" — geometry, programmed
seed, batch shape, codes, per-request seeds — reused by every
property-based equivalence test instead of hand-picked matrix cases, so
adding a backend (or widening the workload space) happens in one place.

Sizes are deliberately small: the point is shape/seed *diversity*, not
numerical load — a 24x5 module already exercises calibration, sharding
thresholds and the WTA resolution sweep.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

#: Input-code alphabet of the 5-bit DACs used throughout the suite.
MAX_CODE = 31


@st.composite
def geometries(draw):
    """A random (small) module geometry plus its construction seed."""
    return {
        "features": draw(st.integers(min_value=8, max_value=24)),
        "templates": draw(st.integers(min_value=2, max_value=5)),
        "seed": draw(st.integers(min_value=0, max_value=2**16)),
    }


@st.composite
def recall_batches(draw, features: int, max_batch: int = 12):
    """A random ``(B, features)`` code batch with per-request seeds.

    Seeds are drawn independently (duplicates allowed — two requests
    sharing a seed is legal and must still be deterministic), codes over
    the full DAC alphabet including the all-zero and all-max edges.
    """
    batch = draw(st.integers(min_value=1, max_value=max_batch))
    codes = draw(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=MAX_CODE),
                min_size=features,
                max_size=features,
            ),
            min_size=batch,
            max_size=batch,
        )
    )
    seeds = draw(
        st.lists(
            st.integers(min_value=0, max_value=2**31 - 1),
            min_size=batch,
            max_size=batch,
        )
    )
    return (
        np.asarray(codes, dtype=np.int64),
        np.asarray(seeds, dtype=np.int64),
    )


def build_test_amm(features: int, templates: int, seed: int, **kwargs):
    """The one AMM constructor every property test shares (ideal path
    unless overridden): identical arguments — identical module."""
    rng = np.random.default_rng(seed)
    template_codes = rng.integers(0, MAX_CODE + 1, size=(features, templates))
    from repro.core.amm import AssociativeMemoryModule

    kwargs.setdefault("include_parasitics", False)
    kwargs.setdefault("input_variation", 0.05)
    return AssociativeMemoryModule.from_templates(
        template_codes, seed=seed, **kwargs
    )
