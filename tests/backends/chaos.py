"""Fault-injection TCP proxy for the remote-backend chaos tests.

:class:`ChaosProxy` sits between a :class:`~repro.backends.remote
.RemoteBackend` link and a real worker agent, forwarding bytes in both
directions while letting a test inject the failure modes distributed
systems actually see:

* ``refuse()`` / ``accept()`` — connection-level kill: new dials are
  rejected and (optionally) live pipes are cut, the shape of a crashed
  or restarting worker;
* ``partition()`` / ``heal()`` — a network partition: established
  connections stay open but no bytes flow, so only a timeout or a
  heartbeat can notice (TCP keeps the socket "connected");
* ``pause()`` / ``resume()`` — a *half-open* worker: new dials are
  SYN-accepted (the TCP connect succeeds immediately) but the
  connection is never bridged to the upstream, so the very first
  protocol byte — the HELLO reply — stalls.  This is the third
  distinct liveness shape next to refused (dial fails fast) and
  partitioned (an *established* pipe stalls): a dialler only finds out
  via its io timeout, after a successful connect.  ``resume()``
  bridges every stalled connection to the upstream, late but intact;
* ``delay(seconds)`` — a slow worker / congested path: every forwarded
  chunk is held for ``seconds`` first, distinguishing *slow* from
  *dead*;
* ``close_after(n)`` — cut the client→worker pipe after exactly ``n``
  forwarded bytes, which lands mid-frame for any interesting ``n`` and
  pins the backend's handling of torn writes.

The proxy binds an ephemeral port (never a hard-coded one — the suite's
port-collision rule) and is intentionally dependency-free: plain
sockets and threads, no asyncio, so it runs identically under pytest
and in CI smoke scripts.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import List, Optional, Tuple


class ChaosProxy:
    """A controllable TCP forwarder between one client and one upstream.

    Parameters
    ----------
    upstream:
        ``(host, port)`` of the real worker agent.
    host:
        Listen interface for the proxied address (ephemeral port).
    """

    def __init__(self, upstream: Tuple[str, int], host: str = "127.0.0.1") -> None:
        self.upstream = upstream
        self._listener = socket.create_server((host, 0), backlog=8)
        self._lock = threading.Lock()
        self._refusing = False
        self._paused = False
        self._stalled: List[socket.socket] = []
        self._partitioned = threading.Event()
        self._partitioned.set()  # set = flowing, cleared = partitioned
        self._delay = 0.0
        self._cut_after: Optional[int] = None
        self._forwarded_to_upstream = 0
        self._pairs: List[Tuple[socket.socket, socket.socket]] = []
        self._closed = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept", daemon=True
        )
        self._accept_thread.start()

    @property
    def address(self) -> Tuple[str, int]:
        """The proxied ``(host, port)`` a backend should dial."""
        host, port = self._listener.getsockname()[:2]
        return host, port

    @property
    def bytes_to_upstream(self) -> int:
        """Bytes forwarded client→worker so far (for close_after maths)."""
        with self._lock:
            return self._forwarded_to_upstream

    # ------------------------------------------------------------------ #
    # Fault controls
    # ------------------------------------------------------------------ #
    def refuse(self, kill_existing: bool = True) -> None:
        """Reject new connections (and cut live ones): a dead worker."""
        with self._lock:
            self._refusing = True
        if kill_existing:
            self._drop_pairs()

    def accept(self) -> None:
        """Stop refusing: the worker is back."""
        with self._lock:
            self._refusing = False

    def pause(self) -> None:
        """Accept new dials but never bridge them: a half-open worker.

        The client's ``connect()`` succeeds (SYN-ACKed by the listener)
        yet no handshake byte ever arrives — the shape of a wedged or
        SYN-flooded host, distinct from ``refuse()`` (dial fails fast)
        and ``partition()`` (an already-established pipe stalls).
        """
        with self._lock:
            self._paused = True

    def resume(self) -> None:
        """Bridge every stalled connection and accept normally again."""
        with self._lock:
            self._paused = False
            stalled, self._stalled = self._stalled, []
        for client in stalled:
            self._bridge(client)

    def partition(self) -> None:
        """Stop forwarding in both directions while keeping sockets open."""
        self._partitioned.clear()

    def heal(self) -> None:
        """End the partition; buffered bytes resume flowing."""
        self._partitioned.set()

    def delay(self, seconds: float) -> None:
        """Hold every forwarded chunk for ``seconds`` (0 restores normal)."""
        with self._lock:
            self._delay = seconds

    def close_after(self, total_bytes: int) -> None:
        """Cut both pipes once ``total_bytes`` have gone client→worker.

        Counted from now (the running total is rebased), so tests can
        aim the cut at the middle of the *next* frame regardless of any
        handshake traffic already forwarded.
        """
        with self._lock:
            self._forwarded_to_upstream = 0
            self._cut_after = total_bytes

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            with self._lock:
                refusing = self._refusing or self._closed
                paused = self._paused
                if not refusing and paused:
                    # Half-open: the dial already succeeded (we accepted),
                    # but the connection is never bridged to the upstream
                    # until resume() — the peer's next read just stalls.
                    self._stalled.append(client)
                    continue
            if refusing:
                client.close()
                continue
            self._bridge(client)

    def _bridge(self, client: socket.socket) -> None:
        """Dial the upstream and start pumping both directions."""
        try:
            upstream = socket.create_connection(self.upstream, timeout=5.0)
        except OSError:
            client.close()
            return
        with self._lock:
            self._pairs.append((client, upstream))
        for source, sink, to_upstream in (
            (client, upstream, True),
            (upstream, client, False),
        ):
            threading.Thread(
                target=self._pump,
                args=(source, sink, to_upstream),
                name="chaos-proxy-pump",
                daemon=True,
            ).start()

    def _pump(self, source: socket.socket, sink: socket.socket, to_upstream: bool) -> None:
        try:
            while True:
                try:
                    chunk = source.recv(65536)
                except OSError:
                    break
                if not chunk:
                    break
                # Hold during a partition; the chunk is delivered (or the
                # socket torn down) when the test decides.
                while not self._partitioned.wait(timeout=0.05):
                    if self._closed:
                        return
                with self._lock:
                    delay = self._delay
                    cut = None
                    if to_upstream:
                        self._forwarded_to_upstream += len(chunk)
                        if (
                            self._cut_after is not None
                            and self._forwarded_to_upstream >= self._cut_after
                        ):
                            keep = len(chunk) - (
                                self._forwarded_to_upstream - self._cut_after
                            )
                            cut = max(0, keep)
                            self._cut_after = None
                if delay:
                    time.sleep(delay)
                if cut is not None:
                    try:
                        sink.sendall(chunk[:cut])
                    except OSError:
                        pass
                    self._drop_pair(source, sink)
                    return
                try:
                    sink.sendall(chunk)
                except OSError:
                    break
        finally:
            self._drop_pair(source, sink)

    def _drop_pair(self, a: socket.socket, b: socket.socket) -> None:
        for sock in (a, b):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()
        with self._lock:
            self._pairs = [
                pair for pair in self._pairs if a not in pair and b not in pair
            ]

    def _drop_pairs(self) -> None:
        with self._lock:
            pairs, self._pairs = self._pairs, []
        for a, b in pairs:
            for sock in (a, b):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                sock.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._listener.close()
        self._drop_pairs()
        with self._lock:
            stalled, self._stalled = self._stalled, []
        for client in stalled:
            client.close()
        self._partitioned.set()

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
