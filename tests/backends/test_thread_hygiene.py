"""Thread hygiene: ``close()`` must not leak supervision machinery.

Every backend owns background threads of some kind — shard executors,
process watchers, link supervisors, heartbeats, worker-connection
handlers, control-socket acceptors.  The contract pinned here: after
``close()`` returns (plus a short grace for daemon threads to finish
unwinding), ``threading.enumerate()`` is back to what it was before the
backend existed.  This pins two latent leaks: remote/fleet supervisor
threads that could outlive the backend when a reconnect dial was in
flight (the join budget now covers ``connect_timeout``), and worker
handler threads that were started but never joined by
``WorkerServer.close()``.
"""

from __future__ import annotations

import threading

import pytest

from repro.backends import (
    FleetSupervisor,
    ProcessPoolBackend,
    RemoteBackend,
    SerialBackend,
    ThreadedBackend,
    WorkerServer,
)
from tests.backends.test_remote import wait_until


def _assert_threads_return_to(baseline):
    __tracebackhide__ = True
    assert wait_until(
        lambda: set(threading.enumerate()) <= baseline, timeout=15.0
    ), (
        "threads leaked past close(): "
        f"{[t.name for t in set(threading.enumerate()) - baseline]}"
    )


def _serial(amm):
    return SerialBackend(amm), []


def _threads(amm):
    return ThreadedBackend(amm, workers=2, min_shard_size=4), []


def _processes(amm):
    return ProcessPoolBackend(amm, workers=1, min_shard_size=4), []


def _remote(amm):
    servers = [WorkerServer().start(), WorkerServer().start()]
    engine = amm.solver.batch_engine
    engine.prepare(amm.include_parasitics)
    backend = RemoteBackend(
        amm,
        worker_addresses=[server.address for server in servers],
        min_shard_size=4,
        chunk_size=engine.chunk_size,
        heartbeat_interval=0.1,
        io_timeout=20.0,
    )
    return backend, servers


def _fleet(amm):
    servers = [WorkerServer().start(), WorkerServer().start()]
    engine = amm.solver.batch_engine
    engine.prepare(amm.include_parasitics)
    backend = FleetSupervisor(
        amm,
        worker_addresses=[server.address for server in servers],
        min_shard_size=4,
        chunk_size=engine.chunk_size,
        heartbeat_interval=0.1,
        io_timeout=20.0,
        control=("127.0.0.1", 0),
    )
    return backend, servers


@pytest.mark.parametrize(
    "factory", [_serial, _threads, _processes, _remote, _fleet],
    ids=["serial", "threads", "processes", "remote", "fleet"],
)
def test_backend_close_joins_all_threads(
    factory, backend_amm, request_codes, request_seeds
):
    baseline = set(threading.enumerate())
    backend, servers = factory(backend_amm)
    try:
        backend.prepare()
        backend.recall_batch_seeded(request_codes, request_seeds)
    finally:
        backend.close()
        for server in servers:
            server.close()
    _assert_threads_return_to(baseline)


def test_worker_server_close_joins_handler_threads(backend_amm):
    """The worker agent itself: accept loop AND per-connection handlers.

    The handler threads used to be fire-and-forget daemons; a close()
    racing a busy handler could return while the handler still ran.
    """
    import socket

    from repro.backends import EngineSpec, wire

    baseline = set(threading.enumerate())
    server = WorkerServer().start()
    connections = []
    try:
        # Open two real handshaken connections so two handler threads run.
        spec_header, spec_arrays = wire.spec_to_wire(
            EngineSpec.from_module(backend_amm)
        )
        for _ in range(2):
            sock = socket.create_connection(server.address, timeout=5.0)
            sock.settimeout(10.0)
            wire.send_frame(sock, wire.HELLO, {"protocol": wire.PROTOCOL_VERSION})
            kind, _, _, _ = wire.recv_frame(sock)
            assert kind == wire.HELLO
            wire.send_frame(sock, wire.SPEC, spec_header, spec_arrays)
            kind, _, _, _ = wire.recv_frame(sock)
            assert kind == wire.OK
            connections.append(sock)
        # Leave the connections open: close() must evict the handlers.
    finally:
        server.close()
        for sock in connections:
            sock.close()
    _assert_threads_return_to(baseline)


def test_fleet_close_is_prompt_with_reconnect_in_flight(backend_amm):
    """close() during a reconnect dial still joins the supervisor."""
    engine = backend_amm.solver.batch_engine
    engine.prepare(backend_amm.include_parasitics)
    server = WorkerServer().start()
    baseline = set(threading.enumerate()) | {threading.current_thread()}
    fleet = FleetSupervisor(
        backend_amm,
        worker_addresses=[server.address],
        chunk_size=engine.chunk_size,
        heartbeat_interval=0.05,
        backoff_base=0.01,
        backoff_max=0.05,
        connect_timeout=1.0,
        io_timeout=5.0,
    ).prepare()
    # Kill the only worker so the supervisor enters its reconnect loop.
    server.close()
    replica = fleet._replicas_snapshot()[0]
    assert wait_until(lambda: not replica.link.alive, timeout=10.0)
    fleet.close()
    _assert_threads_return_to(baseline)
