"""Cross-backend equivalence matrix.

The acceptance contract of the pluggable-backend refactor: for the same
per-request seeds, every backend — serial, threaded (any worker count,
any shard boundary) and process-pool — returns *identical* winner codes,
DOM codes, acceptance/tie flags and event counters, and
solver-precision-equal analog outputs.  The reference is the module's own
seeded engine; all backends run the same arithmetic on replicas of the
same network, so the discrete outputs must be exactly equal and the
analog outputs bit-identical in practice (asserted to 1e-12 relative to
stay robust to BLAS build differences).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import SerialBackend, ThreadedBackend, contiguous_shards


def assert_results_equal(result, reference, rtol=1e-12):
    assert np.array_equal(result.winner_column, reference.winner_column)
    assert np.array_equal(result.winner, reference.winner)
    assert np.array_equal(result.dom_code, reference.dom_code)
    assert np.array_equal(result.accepted, reference.accepted)
    assert np.array_equal(result.tie, reference.tie)
    assert np.array_equal(result.codes, reference.codes)
    assert list(result.events) == list(reference.events)
    np.testing.assert_allclose(
        result.column_currents, reference.column_currents, rtol=rtol
    )
    np.testing.assert_allclose(result.static_power, reference.static_power, rtol=rtol)


class TestSerialBackend:
    def test_matches_module_engine(
        self, backend_amm, request_codes, request_seeds, reference_results
    ):
        with SerialBackend(backend_amm) as backend:
            result = backend.recall_batch_seeded(request_codes, request_seeds)
        assert_results_equal(result, reference_results)

    def test_solve_batch_matches_solver(self, backend_amm, request_codes):
        conductances = backend_amm.input_dacs.conductances(request_codes)
        reference = backend_amm.solver.solve_batch(conductances)
        with SerialBackend(backend_amm) as backend:
            solution = backend.solve_batch(conductances)
        np.testing.assert_allclose(
            solution.column_currents, reference.column_currents, rtol=1e-12
        )
        np.testing.assert_allclose(
            solution.supply_current, reference.supply_current, rtol=1e-12
        )


class TestThreadedBackend:
    @pytest.mark.parametrize("workers,min_shard_size", [(1, 16), (2, 4), (3, 2)])
    def test_invariant_across_workers_and_shards(
        self,
        backend_amm,
        request_codes,
        request_seeds,
        reference_results,
        workers,
        min_shard_size,
    ):
        with ThreadedBackend(
            backend_amm, workers=workers, min_shard_size=min_shard_size
        ) as backend:
            result = backend.recall_batch_seeded(request_codes, request_seeds)
        assert_results_equal(result, reference_results)

    def test_solve_batch_sharded(self, backend_amm, request_codes):
        conductances = backend_amm.input_dacs.conductances(request_codes)
        reference = backend_amm.solver.solve_batch(conductances)
        with ThreadedBackend(backend_amm, workers=3, min_shard_size=2) as backend:
            solution = backend.solve_batch(conductances)
        np.testing.assert_allclose(
            solution.column_currents, reference.column_currents, rtol=1e-12
        )

    def test_concurrent_callers_share_engine_pool(
        self, backend_amm, request_codes, request_seeds, reference_results
    ):
        import concurrent.futures

        with ThreadedBackend(backend_amm, workers=2, min_shard_size=4) as backend:
            with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
                futures = [
                    pool.submit(
                        backend.recall_batch_seeded, request_codes, request_seeds
                    )
                    for _ in range(4)
                ]
                for future in futures:
                    assert_results_equal(future.result(timeout=30.0), reference_results)


class TestProcessPoolBackend:
    def test_matches_reference(
        self, process_pool, request_codes, request_seeds, reference_results
    ):
        result = process_pool.recall_batch_seeded(request_codes, request_seeds)
        assert_results_equal(result, reference_results)

    def test_shard_boundary_invariance(
        self, backend_amm, process_pool, request_codes, request_seeds, reference_results
    ):
        """Different slices (hence different shard splits) agree sample-for-sample."""
        for begin, end in [(0, 5), (3, 24), (0, 24)]:
            result = process_pool.recall_batch_seeded(
                request_codes[begin:end], request_seeds[begin:end]
            )
            chunk = backend_amm.recognise_batch_seeded(
                request_codes[begin:end], request_seeds[begin:end]
            )
            assert_results_equal(result, chunk)

    def test_batches_larger_than_buffers_round_trip(
        self, backend_amm, process_pool, request_codes, request_seeds
    ):
        """A batch beyond workers x max_batch_size is processed in rounds."""
        big_codes = np.tile(request_codes, (8, 1))[:160]
        big_seeds = np.arange(160, dtype=np.int64) + 11
        result = process_pool.recall_batch_seeded(big_codes, big_seeds)
        reference = backend_amm.recognise_batch_seeded(big_codes, big_seeds)
        assert_results_equal(result, reference)

    def test_solve_batch_matches_solver(self, backend_amm, process_pool, request_codes):
        conductances = backend_amm.input_dacs.conductances(request_codes)
        reference = backend_amm.solver.solve_batch(conductances)
        solution = process_pool.solve_batch(conductances)
        np.testing.assert_allclose(
            solution.column_currents, reference.column_currents, rtol=1e-12
        )
        np.testing.assert_allclose(
            solution.supply_current, reference.supply_current, rtol=1e-12
        )

    def test_validation_errors_transported(self, process_pool, request_codes):
        with pytest.raises(ValueError):
            process_pool.recall_batch_seeded(
                np.full_like(request_codes, 99), np.arange(request_codes.shape[0])
            )
        # The pool stays healthy after a transported error.
        result = process_pool.recall_batch_seeded(
            request_codes[:2], np.array([1, 2], dtype=np.int64)
        )
        assert len(result) == 2


class TestEvaluateThroughBackends:
    def test_evaluate_invariant_across_backends(
        self, backend_amm, request_codes, process_pool
    ):
        labels = np.zeros(request_codes.shape[0], dtype=np.int64)
        serial = backend_amm.evaluate(request_codes, labels, backend="serial")
        threaded = backend_amm.evaluate(
            request_codes, labels, backend="threads", workers=2
        )
        processes = backend_amm.evaluate(request_codes, labels, backend=process_pool)
        for other in (threaded, processes):
            # Discrete-derived statistics are exactly invariant; mean
            # static power is analog and agrees to solver precision
            # (per-replica chunk autotune can shift BLAS kernel paths).
            assert other["accuracy"] == serial["accuracy"]
            assert other["acceptance_rate"] == serial["acceptance_rate"]
            assert other["tie_rate"] == serial["tie_rate"]
            assert other["mean_static_power"] == pytest.approx(
                serial["mean_static_power"], rel=1e-12
            )

    def test_workers_without_backend_rejected(self, backend_amm, request_codes):
        labels = np.zeros(request_codes.shape[0], dtype=np.int64)
        with pytest.raises(ValueError, match="backend"):
            backend_amm.evaluate(request_codes, labels, workers=4)
        with pytest.raises(ValueError, match="backend"):
            backend_amm.evaluate(request_codes, labels, base_seed=7)

    def test_evaluate_invariant_under_batch_size(self, backend_amm, request_codes):
        labels = np.zeros(request_codes.shape[0], dtype=np.int64)
        whole = backend_amm.evaluate(request_codes, labels, backend="serial")
        chunked = backend_amm.evaluate(
            request_codes, labels, batch_size=5, backend="serial"
        )
        assert chunked["accuracy"] == whole["accuracy"]
        assert chunked["acceptance_rate"] == whole["acceptance_rate"]
        assert chunked["tie_rate"] == whole["tie_rate"]
        assert chunked["mean_static_power"] == pytest.approx(
            whole["mean_static_power"], rel=1e-12
        )


class TestSharding:
    def test_contiguous_shards_cover_exactly(self):
        for count in (1, 5, 24, 100):
            for workers in (1, 2, 3, 8):
                for min_shard in (1, 4, 16):
                    shards = contiguous_shards(count, workers, min_shard)
                    assert shards[0][0] == 0 and shards[-1][1] == count
                    for (a, b), (c, d) in zip(shards, shards[1:]):
                        assert b == c
                    assert len(shards) <= workers

    def test_small_batches_stay_whole(self):
        assert contiguous_shards(6, 3, 16) == [(0, 6)]

    def test_empty_input(self):
        assert contiguous_shards(0, 3, 16) == []
