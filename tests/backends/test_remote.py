"""Remote-backend tests: wire protocol, equivalence, supervision.

The chaos (proxy-injected) failure modes live in
``test_remote_faults.py``; this file pins the happy path — the framing
and handshake contract, bit-identical equivalence with the serial
reference, registry/serving integration — plus the direct worker-loss
semantics (kill, all-dead, reconnect) that need no proxy.
"""

from __future__ import annotations

import socket
import struct
import time

import numpy as np
import pytest

from repro.backends import (
    EngineSpec,
    RemoteBackend,
    WorkerCrashedError,
    WorkerServer,
    parse_worker_addresses,
)
from repro.backends import wire
from tests.backends.test_equivalence import assert_results_equal


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestWireFormat:
    def test_frame_round_trip(self):
        left, right = socket.socketpair()
        try:
            arrays = {
                "a": np.arange(12, dtype=np.int64).reshape(3, 4),
                "b": np.linspace(0.0, 1.0, 5),
            }
            wire.send_frame(left, wire.RECALL, {"count": 3}, arrays)
            kind, version, header, received = wire.recv_frame(right)
            assert kind == wire.RECALL
            assert version == wire.PROTOCOL_VERSION
            assert header["count"] == 3
            assert np.array_equal(received["a"], arrays["a"])
            assert np.array_equal(received["b"], arrays["b"])
        finally:
            left.close()
            right.close()

    def test_bad_magic_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"GET / HTTP/1.1\r\n" + b"\x00" * 32)
            with pytest.raises(wire.WireProtocolError, match="magic"):
                wire.recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_oversized_lengths_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(
                struct.pack(
                    "<4sBHIQ", wire.MAGIC, wire.PING, wire.PROTOCOL_VERSION,
                    wire.MAX_HEADER_BYTES + 1, 0,
                )
            )
            with pytest.raises(wire.WireProtocolError, match="too large"):
                wire.recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_overflowing_shape_rejected_before_allocation(self):
        """Regression: a hostile arrays manifest whose shape product
        wraps an int64 (e.g. [2**32, 2**32]) must be refused as a
        protocol error, not slip past the size bound into numpy."""
        import json

        left, right = socket.socketpair()
        try:
            header = json.dumps(
                {"arrays": [["a", "<f8", [2**32, 2**32]]]}
            ).encode()
            left.sendall(
                struct.pack(
                    "<4sBHIQ", wire.MAGIC, wire.RECALL, wire.PROTOCOL_VERSION,
                    len(header), 0,
                )
            )
            left.sendall(header)
            with pytest.raises(wire.WireProtocolError, match="overruns"):
                wire.recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_eof_mid_frame_is_connection_closed(self):
        left, right = socket.socketpair()
        left.sendall(wire.MAGIC)  # a torn prefix, then EOF
        left.close()
        try:
            with pytest.raises(wire.ConnectionClosedError):
                wire.recv_frame(right)
        finally:
            right.close()

    def test_spec_round_trip_is_exact(self, backend_amm):
        spec = EngineSpec.from_module(backend_amm, chunk_size=16)
        header, arrays = wire.spec_to_wire(spec)
        # The header must be pure JSON (the pickle-free contract).
        import json

        json.dumps(header)
        clone = wire.spec_from_wire(header, arrays)
        assert clone.chunk_size == 16
        module = clone.module
        assert np.array_equal(
            module.crossbar.conductances, backend_amm.crossbar.conductances
        )
        assert np.array_equal(
            module.input_dacs.bit_conductances, backend_amm.input_dacs.bit_conductances
        )
        assert np.array_equal(module.wta._dac_gains, backend_amm.wta._dac_gains)
        assert np.array_equal(module.column_labels, backend_amm.column_labels)
        assert module.include_parasitics == backend_amm.include_parasitics
        assert module.input_variation == backend_amm.input_variation

    def test_rebuilt_module_recalls_bit_identically(
        self, backend_amm, request_codes, request_seeds
    ):
        header, arrays = wire.spec_to_wire(EngineSpec.from_module(backend_amm))
        clone = wire.spec_from_wire(header, arrays)
        rebuilt = clone.module.recognise_batch_seeded(request_codes, request_seeds)
        reference = backend_amm.recognise_batch_seeded(request_codes, request_seeds)
        assert np.array_equal(rebuilt.winner_column, reference.winner_column)
        assert np.array_equal(rebuilt.codes, reference.codes)
        assert np.array_equal(rebuilt.column_currents, reference.column_currents)
        assert list(rebuilt.events) == list(reference.events)


class TestAddressParsing:
    def test_string_forms(self):
        assert parse_worker_addresses("a:1,b:2") == [("a", 1), ("b", 2)]
        assert parse_worker_addresses(["a:1", ("b", 2)]) == [("a", 1), ("b", 2)]
        assert parse_worker_addresses(None) == []

    @pytest.mark.parametrize("bad", ["nocolon", "host:", "host:xyz", "host:0"])
    def test_bad_addresses_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_worker_addresses(bad)

    def test_backend_requires_addresses(self, backend_amm):
        with pytest.raises(ValueError, match="worker_addresses"):
            RemoteBackend(backend_amm)


class TestHandshake:
    def test_version_mismatch_is_clean_error_not_hang(self, worker_servers):
        """A peer speaking the wrong protocol version gets an immediate
        typed ERROR frame and a close — never a hang (regression for the
        worker agent's handshake).  The frame is packed by hand so the
        in-process worker (which shares the wire module) is unaffected."""
        import json

        address = worker_servers[0].address
        future_version = wire.PROTOCOL_VERSION + 1
        header_bytes = json.dumps(
            {"protocol": future_version, "arrays": []}
        ).encode()
        sock = socket.create_connection(address, timeout=5.0)
        try:
            sock.settimeout(5.0)  # a hang would trip this, failing the test
            sock.sendall(
                struct.pack(
                    "<4sBHIQ", wire.MAGIC, wire.HELLO, future_version,
                    len(header_bytes), 0,
                )
            )
            sock.sendall(header_bytes)
            kind, _, header, _ = wire.recv_frame(sock)
            assert kind == wire.ERROR
            assert header["type"] == "ProtocolVersionError"
            # The worker closes after the error: next read sees EOF.
            with pytest.raises(wire.ConnectionClosedError):
                wire.recv_frame(sock)
        finally:
            sock.close()

    def test_non_hello_first_frame_rejected(self, worker_servers):
        sock = socket.create_connection(worker_servers[0].address, timeout=5.0)
        try:
            sock.settimeout(5.0)
            wire.send_frame(sock, wire.PING)
            kind, _, header, _ = wire.recv_frame(sock)
            assert kind == wire.ERROR
            assert "HELLO" in header["message"]
        finally:
            sock.close()

    def test_garbage_peer_gets_error_frame(self, worker_servers):
        sock = socket.create_connection(worker_servers[0].address, timeout=5.0)
        try:
            sock.settimeout(5.0)
            sock.sendall(b"\x00" * 64)
            kind, _, header, _ = wire.recv_frame(sock)
            assert kind == wire.ERROR
        finally:
            sock.close()


class TestRemoteEquivalence:
    def test_matches_reference(
        self, remote_backend, request_codes, request_seeds, reference_results
    ):
        """Parasitic path: discrete outputs exactly equal, analog to
        solver precision (different shard stack shapes take different
        BLAS kernel paths in the last ulp — the suite-wide convention).
        Bit-identity is pinned on the ideal path by
        ``test_equivalence_properties.py``."""
        result = remote_backend.recall_batch_seeded(request_codes, request_seeds)
        assert_results_equal(result, reference_results)

    def test_shard_boundary_invariance(
        self, backend_amm, remote_backend, request_codes, request_seeds
    ):
        for begin, end in [(0, 5), (3, 24), (0, 24)]:
            result = remote_backend.recall_batch_seeded(
                request_codes[begin:end], request_seeds[begin:end]
            )
            chunk = backend_amm.recognise_batch_seeded(
                request_codes[begin:end], request_seeds[begin:end]
            )
            assert_results_equal(result, chunk)

    def test_solve_batch_matches_solver(
        self, backend_amm, remote_backend, request_codes
    ):
        conductances = backend_amm.input_dacs.conductances(request_codes)
        reference = backend_amm.solver.solve_batch(conductances)
        solution = remote_backend.solve_batch(conductances)
        np.testing.assert_allclose(
            solution.column_currents, reference.column_currents, rtol=1e-12
        )
        np.testing.assert_allclose(
            solution.supply_current, reference.supply_current, rtol=1e-12
        )

    def test_validation_errors_transported(self, remote_backend, request_codes):
        with pytest.raises(ValueError):
            remote_backend.recall_batch_seeded(
                np.full_like(request_codes, 99), np.arange(request_codes.shape[0])
            )
        # The links stay healthy after a transported error.
        result = remote_backend.recall_batch_seeded(
            request_codes[:2], np.array([1, 2], dtype=np.int64)
        )
        assert len(result) == 2

    def test_capabilities(self, remote_backend):
        capabilities = remote_backend.capabilities()
        assert capabilities.name == "remote"
        assert capabilities.workers == 2
        assert capabilities.shards_batches
        assert capabilities.escapes_gil

    def test_concurrent_callers_share_links(
        self, remote_backend, request_codes, request_seeds, reference_results
    ):
        import concurrent.futures

        with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(
                    remote_backend.recall_batch_seeded, request_codes, request_seeds
                )
                for _ in range(4)
            ]
            for future in futures:
                assert_results_equal(future.result(timeout=30.0), reference_results)


class TestSupervision:
    def test_kill_one_worker_retries_on_survivor(
        self, backend_amm, worker_servers, remote_backend, request_codes, request_seeds
    ):
        reference = backend_amm.recognise_batch_seeded(request_codes, request_seeds)
        worker_servers[0].close()
        result = remote_backend.recall_batch_seeded(request_codes, request_seeds)
        assert_results_equal(result, reference)
        # The lost shard was retried, not silently dropped.
        assert len(result) == len(request_seeds)

    def test_all_workers_dead_raises_retryable(
        self, worker_servers, remote_backend, request_codes, request_seeds
    ):
        for server in worker_servers:
            server.close()
        with pytest.raises(WorkerCrashedError):
            remote_backend.recall_batch_seeded(request_codes, request_seeds)
        assert getattr(WorkerCrashedError, "retryable", False)

    def test_worker_restart_reconnects_with_backoff(
        self, backend_amm, worker_servers, remote_backend, request_codes, request_seeds
    ):
        reference = backend_amm.recognise_batch_seeded(request_codes, request_seeds)
        victim = worker_servers[0]
        host, port = victim.address
        victim.close()
        # Force the loss to be noticed mid-flight.
        remote_backend.recall_batch_seeded(request_codes, request_seeds)
        assert wait_until(lambda: not remote_backend._links[0].alive)
        # Restart an agent on the same port; the supervisor re-dials it.
        replacement = WorkerServer(host=host, port=port).start()
        try:
            assert wait_until(lambda: remote_backend._links[0].alive), (
                "supervisor never reconnected to the restarted worker"
            )
            assert remote_backend.reconnects >= 1
            result = remote_backend.recall_batch_seeded(request_codes, request_seeds)
            assert_results_equal(result, reference)
        finally:
            replacement.close()

    def test_crash_looping_worker_exhausts_retry_budget(
        self, remote_backend, request_codes, request_seeds, monkeypatch
    ):
        """Regression: a worker that reconnects fine but dies on every
        command must not spin a request forever — after the retry
        budget the dispatch raises the retryable WorkerCrashedError."""
        from repro.backends import remote as remote_module

        def always_crashing(self, kind, header, arrays):
            raise ConnectionError("simulated crash-looping worker")

        monkeypatch.setattr(
            remote_module._WorkerLink, "exchange", always_crashing
        )
        with pytest.raises(WorkerCrashedError, match="safe to retry"):
            remote_backend.recall_batch_seeded(request_codes, request_seeds)

    def test_prepare_fails_fast_when_nothing_listens(self, backend_amm):
        # An address nothing listens on: bind-then-close guarantees it is
        # currently free without ever hard-coding a port number.
        probe = socket.create_server(("127.0.0.1", 0))
        address = probe.getsockname()[:2]
        probe.close()
        backend = RemoteBackend(
            backend_amm, worker_addresses=[address], connect_timeout=0.5
        )
        with pytest.raises(ConnectionError):
            backend.prepare()
        backend.close()


class TestIntegration:
    def test_registry_creates_remote(self, backend_amm, worker_servers):
        from repro.backends import create_backend

        backend = create_backend(
            "remote",
            backend_amm,
            workers=2,
            worker_addresses=[server.address for server in worker_servers],
        )
        try:
            assert isinstance(backend, RemoteBackend)
            assert backend.capabilities().workers == 2
        finally:
            backend.close()

    def test_evaluate_through_remote_matches_serial(
        self, backend_amm, remote_backend, request_codes
    ):
        labels = np.zeros(request_codes.shape[0], dtype=np.int64)
        serial = backend_amm.evaluate(request_codes, labels, backend="serial")
        remote = backend_amm.evaluate(request_codes, labels, backend=remote_backend)
        assert remote["accuracy"] == serial["accuracy"]
        assert remote["acceptance_rate"] == serial["acceptance_rate"]
        assert remote["tie_rate"] == serial["tie_rate"]
        assert remote["mean_static_power"] == pytest.approx(
            serial["mean_static_power"], rel=1e-12
        )

    def test_service_over_remote_backend(
        self, backend_amm, remote_backend, request_codes, request_seeds
    ):
        from repro.serving import RecognitionService

        reference = backend_amm.recognise_batch_seeded(request_codes, request_seeds)
        with RecognitionService(
            backend_amm, max_batch_size=8, max_wait=1e-3, backend=remote_backend
        ) as service:
            assert service.health()["backend"] == "remote"
            results = service.recognise_many(
                request_codes, seeds=list(request_seeds), timeout=30.0
            )
        for index, result in enumerate(results):
            assert result.winner_column == reference[index].winner_column
            assert result.dom_code == reference[index].dom_code

    def test_worker_cli_subprocess_round_trip(self, backend_amm, request_codes, request_seeds):
        """The real `python -m repro worker` agent serves a backend."""
        from repro.backends import spawn_local_worker

        process, address = spawn_local_worker()
        try:
            backend = RemoteBackend(
                backend_amm, worker_addresses=[address], min_shard_size=4
            ).prepare()
            try:
                result = backend.recall_batch_seeded(
                    request_codes[:6], request_seeds[:6]
                )
                reference = backend_amm.recognise_batch_seeded(
                    request_codes[:6], request_seeds[:6]
                )
                assert_results_equal(result, reference)
            finally:
                backend.close()
        finally:
            process.terminate()
            process.wait(timeout=10.0)
