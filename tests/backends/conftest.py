"""Shared fixtures for the execution-backend tests.

Same reduced 32x6 geometry as the serving suite, with input variation on
so both per-request noise substreams (input variation, latch offsets) are
exercised by every backend.  The process-pool backend is expensive to
boot (each worker is a fresh interpreter importing numpy/scipy), so one
two-worker pool is shared across the whole module run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import ProcessPoolBackend
from repro.core.amm import AssociativeMemoryModule

FEATURES = 32
TEMPLATES = 6
SEED = 3


def build_amm(**kwargs) -> AssociativeMemoryModule:
    """A fresh reduced module; identical for identical keyword arguments."""
    rng = np.random.default_rng(SEED)
    templates = rng.integers(0, 32, size=(FEATURES, TEMPLATES))
    return AssociativeMemoryModule.from_templates(templates, seed=SEED, **kwargs)


@pytest.fixture(scope="session")
def backend_amm() -> AssociativeMemoryModule:
    return build_amm(include_parasitics=True, input_variation=0.05)


@pytest.fixture(scope="session")
def request_codes() -> np.ndarray:
    rng = np.random.default_rng(SEED + 2000)
    return rng.integers(0, 32, size=(24, FEATURES))


@pytest.fixture(scope="session")
def request_seeds(request_codes) -> np.ndarray:
    return np.arange(request_codes.shape[0], dtype=np.int64) + 700


@pytest.fixture(scope="session")
def reference_results(backend_amm, request_codes, request_seeds):
    """Ground truth: the module's own seeded engine, one batch."""
    return backend_amm.recognise_batch_seeded(request_codes, request_seeds)


@pytest.fixture(scope="session")
def process_pool(backend_amm):
    """One shared two-worker process pool (spawning workers is slow)."""
    backend = ProcessPoolBackend(
        backend_amm, workers=2, min_shard_size=4, max_batch_size=64
    ).prepare()
    yield backend
    backend.close()


@pytest.fixture()
def worker_servers():
    """Two in-process worker agents on ephemeral ports.

    Function-scoped: fault tests kill them, so sharing would leak state
    between tests.  Always bind port 0 — never a hard-coded port.
    """
    from repro.backends import WorkerServer

    servers = [WorkerServer().start(), WorkerServer().start()]
    yield servers
    for server in servers:
        server.close()


@pytest.fixture()
def fleet_backend(backend_amm, worker_servers):
    """A two-replica fleet supervisor with its control socket bound.

    Same chunk-pinning and test-speed supervision knobs as
    ``remote_backend``; the control socket binds an ephemeral port
    (never hard-coded) so admin-client tests can dial it.
    """
    from repro.backends import FleetSupervisor

    engine = backend_amm.solver.batch_engine
    engine.prepare(backend_amm.include_parasitics)
    backend = FleetSupervisor(
        backend_amm,
        worker_addresses=[server.address for server in worker_servers],
        min_shard_size=2,
        chunk_size=engine.chunk_size,
        heartbeat_interval=0.1,
        backoff_base=0.02,
        backoff_max=0.2,
        connect_timeout=5.0,
        io_timeout=20.0,
        control=("127.0.0.1", 0),
    ).prepare()
    yield backend
    backend.close()


@pytest.fixture()
def remote_backend(backend_amm, worker_servers):
    """A two-replica remote backend with test-speed supervision knobs.

    The Woodbury chunk is pinned to the parent module's own engine so
    remote results are *bit*-identical to the in-process reference —
    independently autotuned chunks would differ only in the last BLAS
    ulp, but the equivalence tests assert exact equality.
    """
    from repro.backends import RemoteBackend

    engine = backend_amm.solver.batch_engine
    engine.prepare(backend_amm.include_parasitics)
    backend = RemoteBackend(
        backend_amm,
        worker_addresses=[server.address for server in worker_servers],
        min_shard_size=4,
        chunk_size=engine.chunk_size,
        heartbeat_interval=0.1,
        backoff_base=0.02,
        backoff_max=0.2,
        connect_timeout=5.0,
        io_timeout=20.0,
    ).prepare()
    yield backend
    backend.close()
