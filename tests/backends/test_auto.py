"""The ``auto`` backend: cost model, planner and routing invariance.

Three layers:

* pure unit tests of :class:`CostModel` / :class:`DispatchPlanner` with
  synthetic (deterministic) models — the routing *logic* must not depend
  on what this host happens to measure;
* calibration contract tests on a real prepared backend (min_shard_size
  restored, models positive and recorded);
* result-invariance tests: whatever plan the model picks — including
  every plan it *could* have picked — the results are identical to the
  serial reference, because routing is a performance decision and must
  never be a correctness one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    AutoBackend,
    CostModel,
    DispatchPlan,
    DispatchPlanner,
    SerialBackend,
    ShardRule,
    backend_names,
    calibrate_backend,
    create_backend,
)
from tests.backends.strategies import build_test_amm

FEATURES = 16
TEMPLATES = 4


@pytest.fixture(scope="module")
def ideal_amm():
    return build_test_amm(FEATURES, TEMPLATES, 29)


@pytest.fixture(scope="module")
def auto_backend(ideal_amm):
    backend = AutoBackend(ideal_amm, workers=2, min_shard_size=4).prepare()
    yield backend
    backend.close()


def make_batch(amm, count, seed=500):
    rng = np.random.default_rng(seed)
    codes = rng.integers(
        0, amm.input_dacs.max_code + 1, size=(count, amm.crossbar.rows)
    )
    seeds = rng.integers(0, 2**31 - 1, size=count)
    return codes, seeds


class TestCostModel:
    def test_predict_is_affine_single_shard(self):
        model = CostModel(
            backend="x", fixed=1e-3, marginal=1e-4, workers=1, parallel_speedup=1.0
        )
        assert model.predict(10, 1) == pytest.approx(1e-3 + 10e-4)
        assert model.predict(0, 1) == 0.0

    def test_predict_divides_by_effective_concurrency(self):
        model = CostModel(
            backend="x", fixed=1e-3, marginal=1e-4, workers=4, parallel_speedup=2.0
        )
        serialised = 4 * 1e-3 + 100 * 1e-4
        assert model.predict(100, 4) == pytest.approx(serialised / 2.0)
        # One shard never benefits from parallelism.
        assert model.predict(100, 1) == pytest.approx(1e-3 + 100 * 1e-4)

    def test_shards_clamped_to_count(self):
        model = CostModel(
            backend="x", fixed=1e-3, marginal=1e-4, workers=8, parallel_speedup=8.0
        )
        # 2 images cannot occupy 8 shards: 2 shards, 2-way overlap.
        assert model.predict(2, 8) == pytest.approx((2 * 1e-3 + 2e-4) / 2)


class TestDispatchPlanner:
    def _planner(self, serial_fixed=1e-4, par_fixed=1e-3, par_marginal=2e-5):
        """Serial: cheap fixed, slow marginal.  Parallel: expensive fixed,
        fast marginal with real 4x speedup — the canonical crossover."""
        serial = CostModel(
            backend="serial", fixed=serial_fixed, marginal=1e-4,
            workers=1, parallel_speedup=1.0,
        )
        par = CostModel(
            backend="processes", fixed=par_fixed, marginal=par_marginal,
            workers=4, parallel_speedup=4.0,
        )
        return DispatchPlanner({
            "serial": (serial, ShardRule(workers=1, min_shard_size=1)),
            "processes": (par, ShardRule(workers=4, min_shard_size=8)),
        })

    def test_small_batches_stay_serial(self):
        planner = self._planner()
        for count in (1, 2, 4, 8):
            assert planner.plan(count).backend == "serial"

    def test_large_batches_cross_over(self):
        plan = self._planner().plan(512)
        assert plan.backend == "processes"
        assert plan.shards == 4
        assert plan.count == 512

    def test_ties_prefer_first_registered(self):
        model = CostModel(
            backend="a", fixed=1e-3, marginal=1e-4, workers=1, parallel_speedup=1.0
        )
        rule = ShardRule(workers=1, min_shard_size=1)
        planner = DispatchPlanner({"serial": (model, rule), "other": (model, rule)})
        assert planner.plan(32).backend == "serial"

    def test_parallelism_that_does_not_pay_never_wins(self):
        """A thread pool that measures speedup ~1 (one core) with equal
        marginal cost but higher fixed cost loses at every batch size."""
        serial = CostModel(
            backend="serial", fixed=1e-4, marginal=1e-4,
            workers=1, parallel_speedup=1.0,
        )
        threads = CostModel(
            backend="threads", fixed=5e-4, marginal=1e-4,
            workers=2, parallel_speedup=1.0,
        )
        planner = DispatchPlanner({
            "serial": (serial, ShardRule(workers=1, min_shard_size=1)),
            "threads": (threads, ShardRule(workers=2, min_shard_size=8)),
        })
        for count in (1, 16, 64, 1024):
            assert planner.plan(count).backend == "serial"

    def test_empty_planner_rejected(self):
        with pytest.raises(ValueError):
            DispatchPlanner({})

    def test_batches_below_min_shard_never_leave_incumbent(self):
        """Below a candidate's min_shard_size the predictions differ only
        in their noise-dominated fixed intercepts, so the candidate is
        not even considered — even when its model claims a decisive win."""
        serial = CostModel(
            backend="serial", fixed=1e-3, marginal=1e-4,
            workers=1, parallel_speedup=1.0,
        )
        threads = CostModel(  # "measured" 10x cheaper: pure noise
            backend="threads", fixed=1e-4, marginal=1e-5,
            workers=2, parallel_speedup=2.0,
        )
        planner = DispatchPlanner({
            "serial": (serial, ShardRule(workers=1, min_shard_size=1)),
            "threads": (threads, ShardRule(workers=2, min_shard_size=8)),
        })
        for count in (1, 4, 7):
            assert planner.plan(count).backend == "serial"
        assert planner.plan(8).backend == "threads"

    def test_margin_keeps_marginal_wins_on_incumbent(self):
        """A challenger predicting a few percent faster (well inside
        calibration noise) must not take batches away from serial."""
        serial = CostModel(
            backend="serial", fixed=0.0, marginal=1.00e-4,
            workers=1, parallel_speedup=1.0,
        )
        threads = CostModel(
            backend="threads", fixed=0.0, marginal=0.95e-4,
            workers=2, parallel_speedup=1.0,
        )
        entries = {
            "serial": (serial, ShardRule(workers=1, min_shard_size=1)),
            "threads": (threads, ShardRule(workers=2, min_shard_size=1)),
        }
        # Without a margin the 5% "win" flips the route...
        assert DispatchPlanner(entries).plan(64).backend == "threads"
        # ...with one it stays on the incumbent; a decisive win still moves.
        planner = DispatchPlanner(entries, margin=0.15)
        assert planner.plan(64).backend == "serial"
        fast = CostModel(
            backend="threads", fixed=0.0, marginal=0.5e-4,
            workers=2, parallel_speedup=2.0,
        )
        entries["threads"] = (fast, ShardRule(workers=2, min_shard_size=1))
        assert DispatchPlanner(entries, margin=0.15).plan(64).backend == "threads"

    def test_invalid_margin_rejected(self):
        model = CostModel(
            backend="serial", fixed=0.0, marginal=1e-4,
            workers=1, parallel_speedup=1.0,
        )
        entries = {"serial": (model, ShardRule(workers=1, min_shard_size=1))}
        for margin in (-0.1, 1.0, 1.5):
            with pytest.raises(ValueError, match="margin"):
                DispatchPlanner(entries, margin=margin)


class TestCalibration:
    def test_calibrates_positive_model_and_restores_threshold(self, ideal_amm):
        backend = SerialBackend(ideal_amm).prepare()
        try:
            model = calibrate_backend(
                backend, lambda n: make_batch(ideal_amm, n), repeats=1
            )
        finally:
            backend.close()
        assert model.backend == "serial"
        assert model.fixed >= 0.0
        assert model.marginal > 0.0
        assert model.parallel_speedup == 1.0
        assert model.samples["large_seconds"] >= 0.0

    def test_threaded_calibration_restores_min_shard_size(self, ideal_amm):
        from repro.backends import ThreadedBackend

        backend = ThreadedBackend(ideal_amm, workers=2, min_shard_size=7).prepare()
        try:
            model = calibrate_backend(
                backend, lambda n: make_batch(ideal_amm, n), repeats=1
            )
            assert backend.min_shard_size == 7
            assert 1.0 <= model.parallel_speedup <= 2.0
            assert "parallel_seconds" in model.samples
        finally:
            backend.close()

    def test_max_speedup_caps_fitted_speedup(self, ideal_amm):
        """With a physical ceiling of 1 core the fitted speedup is exactly
        1.0 no matter what the fan-out point happened to measure."""
        from repro.backends import ThreadedBackend

        backend = ThreadedBackend(ideal_amm, workers=2, min_shard_size=4).prepare()
        try:
            model = calibrate_backend(
                backend,
                lambda n: make_batch(ideal_amm, n),
                repeats=1,
                max_speedup=1.0,
            )
            assert model.parallel_speedup == 1.0
        finally:
            backend.close()


class TestAutoBackend:
    def test_registered(self):
        assert "auto" in backend_names()

    def test_registry_constructs_auto(self, ideal_amm):
        backend = create_backend("auto", ideal_amm, workers=1)
        try:
            assert isinstance(backend, AutoBackend)
            assert backend._candidate_names == ["serial"]
        finally:
            backend.close()

    def test_default_candidates_scale_with_workers(self, ideal_amm):
        backend = AutoBackend(ideal_amm, workers=2)
        assert backend._candidate_names == ["serial", "threads", "processes"]
        backend.close()

    def test_unknown_candidate_rejected(self, ideal_amm):
        with pytest.raises(ValueError, match="unknown auto candidates"):
            AutoBackend(ideal_amm, candidates=["serial", "gpu"])

    def test_remote_candidate_requires_addresses(self, ideal_amm):
        with pytest.raises(ValueError, match="worker_addresses"):
            AutoBackend(ideal_amm, candidates=["remote"])

    def test_prepare_builds_models_and_planner(self, auto_backend):
        assert set(auto_backend.cost_models) == {"serial", "threads", "processes"}
        for model in auto_backend.cost_models.values():
            assert model.marginal > 0.0
            assert model.fixed >= 0.0
            assert 1.0 <= model.parallel_speedup <= model.workers
        plan = auto_backend.plan_for(1)
        assert isinstance(plan, DispatchPlan)
        # A 1-image batch can never justify a dispatch overhead: the
        # model must keep it on the caller's core.
        assert plan.backend == "serial"

    def test_dispatch_records_plan(self, auto_backend, ideal_amm):
        codes, seeds = make_batch(ideal_amm, 3)
        before = dict(auto_backend.plan_counts)
        auto_backend.recall_batch_seeded(codes, seeds)
        assert sum(auto_backend.plan_counts.values()) == sum(before.values()) + 1
        assert auto_backend.last_plan is not None
        assert auto_backend.last_plan.count == 3

    def test_results_bit_identical_to_serial(self, auto_backend, ideal_amm):
        codes, seeds = make_batch(ideal_amm, 40, seed=123)
        with SerialBackend(ideal_amm) as serial:
            reference = serial.recall_batch_seeded(codes, seeds)
        result = auto_backend.recall_batch_seeded(codes, seeds)
        assert np.array_equal(result.winner_column, reference.winner_column)
        assert np.array_equal(result.codes, reference.codes)
        assert np.array_equal(result.column_currents, reference.column_currents)
        assert list(result.events) == list(reference.events)

    def test_every_possible_plan_gives_identical_results(
        self, auto_backend, ideal_amm
    ):
        """Force the planner through each candidate in turn: different
        calibration outcomes on different runs may route the same batch
        differently, and that must be invisible in the results."""
        codes, seeds = make_batch(ideal_amm, 24, seed=321)
        with SerialBackend(ideal_amm) as serial:
            reference = serial.recall_batch_seeded(codes, seeds)
        saved = auto_backend._planner
        try:
            for name in auto_backend._candidate_names:
                model = auto_backend.cost_models[name]
                rule = (
                    ShardRule(workers=1, min_shard_size=1)
                    if name == "serial"
                    else ShardRule(workers=2, min_shard_size=4)
                )
                auto_backend._planner = DispatchPlanner({name: (model, rule)})
                result = auto_backend.recall_batch_seeded(codes, seeds)
                assert auto_backend.last_plan.backend == name
                assert np.array_equal(
                    result.winner_column, reference.winner_column
                ), name
                assert np.array_equal(
                    result.column_currents, reference.column_currents
                ), name
                assert list(result.events) == list(reference.events), name
        finally:
            auto_backend._planner = saved

    def test_solve_batch_routes_and_matches(self, auto_backend, ideal_amm):
        codes, _ = make_batch(ideal_amm, 12, seed=77)
        conductances = ideal_amm.input_dacs.conductances(codes)
        reference = ideal_amm.solver.solve_batch(
            conductances, include_parasitics=False
        )
        solution = auto_backend.solve_batch(conductances, include_parasitics=False)
        np.testing.assert_allclose(
            solution.column_currents, reference.column_currents, rtol=1e-12
        )

    def test_capabilities(self, auto_backend):
        capabilities = auto_backend.capabilities()
        assert capabilities.name == "auto"
        assert capabilities.workers == 2
        assert capabilities.shards_batches
        assert capabilities.escapes_gil  # the process candidate does

    def test_empty_batch_validation_delegates_to_serial(self, auto_backend):
        with pytest.raises(ValueError):
            auto_backend.recall_batch_seeded(
                np.empty((0, FEATURES), dtype=np.int64), []
            )

    def test_serving_pool_accepts_auto(self, ideal_amm):
        from repro.serving.workers import ShardedWorkerPool

        pool = ShardedWorkerPool(ideal_amm, workers=1, backend="auto")
        try:
            assert pool.backend.capabilities().name == "auto"
            assert pool.min_shard_size >= 1
        finally:
            pool.close()
