"""Chaos suite: proxy-injected faults against the remote backend.

Every test routes one worker link through a
:class:`tests.backends.chaos.ChaosProxy` and injects a specific failure
mode, pinning the transport's semantics:

* **kill** — the proxied worker vanishes (connections cut, dials
  refused): its in-flight shard retries on the survivor, answers stay
  correct, and the supervisor reconnects once the worker returns;
* **partition** — bytes stop flowing but sockets stay "connected": only
  the io-timeout / heartbeat can notice; requests keep being served by
  the reachable replica and the partitioned link is detected dead;
* **slow worker** — delayed forwarding: *slow is not dead*; the shard
  completes (no spurious failover) as long as the worker answers within
  the io budget;
* **close-at-byte-N** — the pipe is cut mid-frame (a torn write): the
  backend treats the link as crashed, retries on the survivor and never
  delivers a corrupt result.
"""

from __future__ import annotations

import time

import pytest

from repro.backends import RemoteBackend, WorkerCrashedError, WorkerServer
from tests.backends.chaos import ChaosProxy
from tests.backends.test_equivalence import assert_results_equal
from tests.backends.test_remote import wait_until

@pytest.fixture()
def chaos_setup(backend_amm):
    """Two workers, one behind a chaos proxy; backend with fast knobs.

    Returns ``(backend, proxy, direct_worker, proxied_worker)``; the
    proxied link is always ``backend._links[0]``.
    """
    proxied_worker = WorkerServer().start()
    direct_worker = WorkerServer().start()
    proxy = ChaosProxy(proxied_worker.address)
    engine = backend_amm.solver.batch_engine
    engine.prepare(backend_amm.include_parasitics)
    backend = RemoteBackend(
        backend_amm,
        worker_addresses=[proxy.address, direct_worker.address],
        min_shard_size=4,
        chunk_size=engine.chunk_size,
        heartbeat_interval=0.1,
        backoff_base=0.02,
        backoff_max=0.2,
        connect_timeout=2.0,
        io_timeout=2.0,
    ).prepare()
    yield backend, proxy, direct_worker, proxied_worker
    backend.close()
    proxy.close()
    direct_worker.close()
    proxied_worker.close()


class TestKill:
    def test_kill_mid_service_retries_and_recovers(
        self, backend_amm, chaos_setup, request_codes, request_seeds
    ):
        backend, proxy, _, _ = chaos_setup
        reference = backend_amm.recognise_batch_seeded(request_codes, request_seeds)
        assert_results_equal(
            backend.recall_batch_seeded(request_codes, request_seeds), reference
        )
        proxy.refuse(kill_existing=True)  # the worker "crashes"
        result = backend.recall_batch_seeded(request_codes, request_seeds)
        assert_results_equal(result, reference)
        assert wait_until(lambda: not backend._links[0].alive)
        # The worker comes back: the supervisor reconnects and the link
        # serves again (no restart of the backend needed).
        proxy.accept()
        assert wait_until(lambda: backend._links[0].alive), "no reconnect after heal"
        assert backend.reconnects >= 1
        assert_results_equal(
            backend.recall_batch_seeded(request_codes, request_seeds), reference
        )

    def test_kill_during_recall_never_corrupts(
        self, backend_amm, chaos_setup, request_codes, request_seeds
    ):
        """Repeated kills timed to land during dispatch: every answer is
        either correct or a retryable error — never wrong."""
        backend, proxy, _, _ = chaos_setup
        reference = backend_amm.recognise_batch_seeded(request_codes, request_seeds)
        for attempt in range(3):
            proxy.accept()
            wait_until(lambda: backend._links[0].alive, timeout=5.0)
            proxy.refuse(kill_existing=True)
            try:
                result = backend.recall_batch_seeded(request_codes, request_seeds)
            except WorkerCrashedError:
                continue  # acceptable only if *no* replica remained
            assert_results_equal(result, reference)


class TestPartition:
    def test_partition_detected_and_survivor_serves(
        self, backend_amm, chaos_setup, request_codes, request_seeds
    ):
        backend, proxy, _, _ = chaos_setup
        reference = backend_amm.recognise_batch_seeded(request_codes, request_seeds)
        proxy.partition()
        # The partitioned socket still looks connected; the recall's
        # io-timeout (2 s) fires, the shard retries on the survivor.
        start = time.monotonic()
        result = backend.recall_batch_seeded(request_codes, request_seeds)
        elapsed = time.monotonic() - start
        assert_results_equal(result, reference)
        assert elapsed < 10.0  # bounded by io_timeout + retry, not a hang
        assert wait_until(lambda: not backend._links[0].alive)
        proxy.heal()
        assert wait_until(lambda: backend._links[0].alive), (
            "supervisor never reconnected after the partition healed"
        )

    def test_heartbeat_detects_idle_partition(self, chaos_setup):
        """A partition on an *idle* link is found by the heartbeat alone
        (no request traffic needed) within a few intervals."""
        backend, proxy, _, _ = chaos_setup
        assert backend._links[0].alive
        proxy.partition()
        # heartbeat_interval=0.1, io_timeout=2.0: the PING blocks, times
        # out, and the link is marked dead without any recall in flight.
        assert wait_until(lambda: not backend._links[0].alive, timeout=15.0), (
            "heartbeat never detected the partitioned link"
        )


class TestSlowWorker:
    def test_slow_is_not_dead(
        self, backend_amm, chaos_setup, request_codes, request_seeds
    ):
        """A worker answering within the io budget is used, not failed
        over — latency rises, liveness does not flap."""
        backend, proxy, _, _ = chaos_setup
        reference = backend_amm.recognise_batch_seeded(request_codes, request_seeds)
        proxy.delay(0.15)  # well under io_timeout=2.0
        before = backend.retried_shards
        result = backend.recall_batch_seeded(request_codes, request_seeds)
        assert_results_equal(result, reference)
        assert backend.retried_shards == before, "slow worker was failed over"
        assert backend._links[0].alive

    def test_heartbeat_tolerates_slow_link(self, chaos_setup):
        """Regression: the idle-link heartbeat used to probe with a short
        window (0.25 s) instead of the io budget, so a slow-but-alive
        link whose PONG round trip exceeded the window was declared dead
        — and the next recall failed over for no reason.  Liveness is
        defined by ``io_timeout`` alone."""
        backend, proxy, _, _ = chaos_setup
        proxy.delay(0.3)  # PING round trip ~0.6 s: slow, not dead
        # heartbeat_interval=0.1: several probes hit the slow link.
        deadline = time.monotonic() + 1.5
        while time.monotonic() < deadline:
            assert backend._links[0].alive, (
                "heartbeat declared a slow-but-alive link dead"
            )
            time.sleep(0.05)

    def test_slower_than_io_timeout_fails_over(
        self, backend_amm, chaos_setup, request_codes, request_seeds
    ):
        backend, proxy, _, _ = chaos_setup
        reference = backend_amm.recognise_batch_seeded(request_codes, request_seeds)
        proxy.delay(5.0)  # beyond io_timeout=2.0: indistinguishable from dead
        result = backend.recall_batch_seeded(request_codes, request_seeds)
        assert_results_equal(result, reference)
        assert not backend._links[0].alive
        proxy.delay(0.0)


class TestTornWrites:
    @pytest.mark.parametrize("cut_at", [3, 19, 200])
    def test_close_at_byte_n_retries_cleanly(
        self, backend_amm, chaos_setup, request_codes, request_seeds, cut_at
    ):
        """The pipe dies after exactly N bytes of the next command —
        inside the frame prefix (3), just past it (19), or mid-arrays
        (200).  The shard retries on the survivor; results stay exact."""
        backend, proxy, _, _ = chaos_setup
        reference = backend_amm.recognise_batch_seeded(request_codes, request_seeds)
        proxy.delay(0.05)  # slow the pipe so the cut lands mid-exchange
        proxy.close_after(cut_at)
        result = backend.recall_batch_seeded(request_codes, request_seeds)
        assert_results_equal(result, reference)
        assert not backend._links[0].alive
        proxy.delay(0.0)
