"""The sharding rule's contract, pinned bit-exactly.

``contiguous_shards`` is the single rule every parallel backend (and the
``auto`` cost model's plan predictions) relies on, so its guarantees are
pinned here rather than implied by backend behaviour:

* **capacity regression** — the pre-fix rule capped the shard count at
  ``workers`` even when ``max_shard_size`` required more shards, returning
  shards larger than ``max_shard_size`` whenever
  ``count > workers * max_shard_size``; the process backend would have
  written past its preallocated shared-memory blocks.  Capacity now beats
  the worker cap.
* **floor split** — bounds are ``i * count // shards``, pure integer
  arithmetic; the old ``np.linspace(...).round()`` rounded half-to-even
  through floats, which is both platform-sensitive and able to produce a
  remainder shard below ``min_shard_size``.
* **min/max guarantees** — every shard respects ``max_shard_size``
  always, and ``min_shard_size`` whenever the min rule set the shard
  count (capacity wins when the two conflict).
"""

from __future__ import annotations

import pytest

from repro.backends import contiguous_shards

pytest.importorskip("hypothesis", reason="property suite needs hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st


class TestCapacityRegression:
    def test_oversized_batch_never_exceeds_max_shard_size(self):
        """Regression: count > workers * max_shard_size must raise the
        shard count beyond ``workers``, never return oversized shards.

        Pre-fix this returned two shards of 50 samples against a
        max_shard_size of 10 — a 5x overrun of any buffer sized to the
        declared maximum."""
        shards = contiguous_shards(100, 2, 1, max_shard_size=10)
        assert all(end - begin <= 10 for begin, end in shards)
        assert len(shards) == 10
        assert shards[0][0] == 0 and shards[-1][1] == 100

    def test_capacity_beats_worker_cap_generally(self):
        for count, workers, max_shard in ((129, 2, 64), (7, 1, 2), (1000, 4, 3)):
            shards = contiguous_shards(count, workers, 1, max_shard_size=max_shard)
            assert all(end - begin <= max_shard for begin, end in shards)

    def test_capacity_beats_min_shard_size(self):
        """When max_shard_size forces more shards than the min rule would
        allow, capacity wins: shards may drop below min_shard_size but
        never overrun max_shard_size."""
        shards = contiguous_shards(20, 8, 8, max_shard_size=4)
        assert len(shards) == 5
        assert all(end - begin <= 4 for begin, end in shards)

    def test_invalid_max_shard_size_raises(self):
        with pytest.raises(ValueError, match="max_shard_size"):
            contiguous_shards(10, 2, 1, max_shard_size=0)


class TestFloorSplitPin:
    def test_bounds_are_the_floor_rule_bit_exactly(self):
        """The split *is* ``i * count // shards`` — pinned so the cost
        model (and any future reimplementation) can predict shard sizes
        exactly without calling the function."""
        for count, workers, min_shard in (
            (10, 4, 2),
            (9, 4, 2),
            (24, 2, 4),
            (400, 8, 1),
            (7, 3, 2),
        ):
            shards = contiguous_shards(count, workers, min_shard)
            n = len(shards)
            expected = [
                (count * i // n, count * (i + 1) // n) for i in range(n)
            ]
            assert shards == expected

    def test_small_batches_stay_whole(self):
        assert contiguous_shards(3, 4, 4) == [(0, 3)]
        assert contiguous_shards(1, 8, 1) == [(0, 1)]

    def test_empty_input(self):
        assert contiguous_shards(0, 4, 1) == []
        assert contiguous_shards(-3, 4, 1) == []


@settings(max_examples=300, deadline=None)
@given(
    count=st.integers(min_value=1, max_value=2000),
    workers=st.integers(min_value=1, max_value=16),
    min_shard=st.integers(min_value=1, max_value=64),
    max_shard=st.one_of(st.none(), st.integers(min_value=1, max_value=128)),
)
def test_sharding_contract(count, workers, min_shard, max_shard):
    """Every guarantee the docstring makes, for arbitrary workloads."""
    shards = contiguous_shards(count, workers, min_shard, max_shard_size=max_shard)

    # Exact, ordered, gap-free partition of [0, count) with no empties.
    assert shards[0][0] == 0 and shards[-1][1] == count
    assert all(b == c for (_, b), (c, _) in zip(shards, shards[1:]))
    assert all(end > begin for begin, end in shards)

    sizes = [end - begin for begin, end in shards]

    # Balanced: sizes differ by at most one across the split.
    assert max(sizes) - min(sizes) <= 1

    # max_shard_size is a hard ceiling, always.
    if max_shard is not None:
        assert max(sizes) <= max_shard

    # min_shard_size holds whenever the min rule set the shard count —
    # i.e. unless max_shard_size forced more shards than the min rule
    # would have chosen.
    min_rule_shards = min(workers, max(1, count // min_shard))
    if len(shards) == min_rule_shards and len(shards) > 1:
        assert min(sizes) >= min_shard

    # The worker cap holds unless capacity required exceeding it.
    if max_shard is None or count <= workers * max_shard:
        assert len(shards) <= workers
