"""Property-based cross-backend equivalence: serial ≡ threads ≡
processes ≡ remote, bit-identically, on the ideal path.

The hand-picked matrix in ``test_equivalence.py`` pins the parasitic
path to solver precision; this suite drives seeded-random workloads
(shared strategies in ``strategies.py``) through every backend and
asserts **exact** equality of every output field — on the ideal path
there is no stacked-LAPACK shape sensitivity, so any difference at all
is a transport or seeding bug, not numerics.

Two layers, trading construction cost for coverage:

* random *geometries* are checked serial-vs-threads (cheap in-process
  replicas, a fresh module per example);
* random *batch shapes/contents/seeds* run against long-lived
  process/remote pools on one shared geometry (worker boot is the
  expensive part, and the transport is geometry-agnostic).
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip("hypothesis", reason="property suite needs hypothesis")
from hypothesis import HealthCheck, given, settings

from repro.backends import (
    AutoBackend,
    ProcessPoolBackend,
    RemoteBackend,
    SerialBackend,
    ThreadedBackend,
    WorkerServer,
)
from tests.backends.strategies import build_test_amm, geometries, recall_batches

#: Shared geometry of the long-lived pools (ideal path, input variation
#: on so the per-request noise substream is part of every property).
FEATURES = 16
TEMPLATES = 4
GEOMETRY_SEED = 11


def assert_bit_identical(result, reference):
    """Every field exactly equal — no tolerances on the ideal path."""
    assert np.array_equal(result.winner_column, reference.winner_column)
    assert np.array_equal(result.winner, reference.winner)
    assert np.array_equal(result.dom_code, reference.dom_code)
    assert np.array_equal(result.accepted, reference.accepted)
    assert np.array_equal(result.tie, reference.tie)
    assert np.array_equal(result.codes, reference.codes)
    assert np.array_equal(result.column_currents, reference.column_currents)
    assert np.array_equal(result.static_power, reference.static_power)
    assert list(result.events) == list(reference.events)


@pytest.fixture(scope="module")
def ideal_amm():
    return build_test_amm(FEATURES, TEMPLATES, GEOMETRY_SEED)


@pytest.fixture(scope="module")
def backend_matrix(ideal_amm):
    """serial / threads / processes / remote / auto, one prepared pool each.

    The Woodbury chunk is irrelevant on the ideal path (no stacked
    parasitic solves), so replicas need no chunk pinning for exactness.
    ``auto`` routes through its own serial/threads/processes candidates
    by measured cost — whatever plan its calibration picked on this run,
    the properties below must hold bit-for-bit.
    """
    serial = SerialBackend(ideal_amm).prepare()
    threads = ThreadedBackend(ideal_amm, workers=2, min_shard_size=2).prepare()
    processes = ProcessPoolBackend(
        ideal_amm, workers=2, min_shard_size=2, max_batch_size=64
    ).prepare()
    workers = [WorkerServer().start(), WorkerServer().start()]
    remote = RemoteBackend(
        ideal_amm,
        worker_addresses=[server.address for server in workers],
        min_shard_size=2,
        heartbeat_interval=0.5,
    ).prepare()
    auto = AutoBackend(ideal_amm, workers=2, min_shard_size=2).prepare()
    yield {
        "serial": serial,
        "threads": threads,
        "processes": processes,
        "remote": remote,
        "auto": auto,
    }
    for backend in (serial, threads, processes, remote, auto):
        backend.close()
    for server in workers:
        server.close()


class TestBackendMatrixProperties:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(case=recall_batches(FEATURES))
    def test_all_backends_bit_identical(self, backend_matrix, case):
        """For any batch shape, content and seed vector: four backends,
        one answer, to the last bit."""
        codes, seeds = case
        reference = backend_matrix["serial"].recall_batch_seeded(codes, seeds)
        for name in ("threads", "processes", "remote", "auto"):
            result = backend_matrix[name].recall_batch_seeded(codes, seeds)
            assert_bit_identical(result, reference)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(case=recall_batches(FEATURES))
    def test_splitting_a_batch_changes_nothing(self, backend_matrix, case):
        """Dispatching the same rows as one batch or one-by-one is
        invisible in the results (the serving micro-batcher relies on
        exactly this)."""
        codes, seeds = case
        whole = backend_matrix["remote"].recall_batch_seeded(codes, seeds)
        for index in range(codes.shape[0]):
            single = backend_matrix["remote"].recall_batch_seeded(
                codes[index : index + 1], seeds[index : index + 1]
            )[0]
            reference = whole[index]
            assert single.winner_column == reference.winner_column
            assert single.winner == reference.winner
            assert single.dom_code == reference.dom_code
            assert single.accepted == reference.accepted
            assert single.tie == reference.tie
            assert np.array_equal(single.codes, reference.codes)
            assert np.array_equal(
                single.column_currents, reference.column_currents
            )
            assert single.static_power == reference.static_power
            assert single.events == reference.events

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(case=recall_batches(FEATURES))
    def test_equal_seeds_equal_results(self, backend_matrix, case):
        """Determinism per row: re-running any row with the same seed on
        a different backend replica reproduces it exactly."""
        codes, seeds = case
        first = backend_matrix["processes"].recall_batch_seeded(codes, seeds)
        second = backend_matrix["remote"].recall_batch_seeded(codes, seeds)
        assert_bit_identical(second, first)


class TestGeometryProperties:
    @settings(max_examples=8, deadline=None)
    @given(geometry=geometries())
    def test_serial_threads_identical_for_any_geometry(self, geometry):
        """Backend equivalence holds for arbitrary module geometries and
        construction seeds, not just the suite's pet 32x6 module."""
        amm = build_test_amm(**geometry)
        rng = np.random.default_rng(geometry["seed"] + 1)
        codes = rng.integers(0, 32, size=(6, geometry["features"]))
        seeds = rng.integers(0, 2**31 - 1, size=6)
        with SerialBackend(amm) as serial, ThreadedBackend(
            amm, workers=2, min_shard_size=2
        ) as threads:
            reference = serial.recall_batch_seeded(codes, seeds)
            assert_bit_identical(
                threads.recall_batch_seeded(codes, seeds), reference
            )

    @settings(max_examples=8, deadline=None)
    @given(geometry=geometries())
    def test_sharding_rule_covers_exactly(self, geometry):
        """The shared shard rule (every parallel backend uses it) always
        partitions [0, B) exactly, whatever the workload shape."""
        from repro.backends import contiguous_shards

        rng = np.random.default_rng(geometry["seed"])
        count = int(rng.integers(1, 200))
        workers = int(rng.integers(1, 9))
        min_shard = int(rng.integers(1, 33))
        shards = contiguous_shards(count, workers, min_shard)
        assert shards[0][0] == 0 and shards[-1][1] == count
        assert all(b == c for (_, b), (c, _) in zip(shards, shards[1:]))
        assert len(shards) <= workers
