"""Registry, EngineSpec and capability-surface tests."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.backends import (
    BackendCapabilities,
    EngineSpec,
    RecallBackend,
    SerialBackend,
    backend_names,
    create_backend,
    register_backend,
    resolve_backend,
)
from repro.backends import registry as registry_module


class TestRegistry:
    def test_builtin_names_registered(self):
        names = backend_names()
        for name in ("serial", "threads", "processes", "auto"):
            assert name in names

    def test_create_unknown_backend_raises(self, backend_amm):
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("bogus", backend_amm)

    def test_unknown_backend_is_keyerror_listing_names(self, backend_amm):
        """Regression: a typo'd backend name raises a KeyError (it is a
        failed registry lookup) whose message lists every registered
        name — while staying a ValueError for historical callers."""
        from repro.backends import UnknownBackendError

        with pytest.raises(KeyError) as excinfo:
            create_backend("prcoesses", backend_amm)  # the classic typo
        assert isinstance(excinfo.value, UnknownBackendError)
        assert isinstance(excinfo.value, ValueError)
        message = str(excinfo.value)
        for name in ("serial", "threads", "processes", "remote"):
            assert name in message
        # KeyError.__str__ would repr() the message into quoted noise;
        # the subclass must read as a sentence.
        assert not message.startswith('"') and not message.startswith("'")

    def test_remote_registered(self):
        assert "remote" in backend_names()

    def test_create_builds_requested_type(self, backend_amm):
        backend = create_backend("serial", backend_amm)
        assert isinstance(backend, SerialBackend)
        backend.close()

    def test_resolve_none_uses_default(self, backend_amm):
        backend, owned = resolve_backend(None, backend_amm)
        try:
            assert backend.capabilities().name == registry_module.DEFAULT_BACKEND
            assert owned is True
        finally:
            backend.close()

    def test_resolve_instance_passthrough(self, backend_amm):
        instance = SerialBackend(backend_amm)
        resolved, owned = resolve_backend(instance, backend_amm)
        assert resolved is instance
        assert owned is False
        instance.close()

    def test_resolve_rejects_other_types(self, backend_amm):
        with pytest.raises(TypeError):
            resolve_backend(42, backend_amm)

    def test_custom_backend_registration(self, backend_amm, request_codes, request_seeds):
        class RecordingBackend(SerialBackend):
            name = "recording"
            calls = 0

            def recall_batch_seeded(self, codes_batch, request_seeds):
                type(self).calls += 1
                return super().recall_batch_seeded(codes_batch, request_seeds)

        register_backend("recording", RecordingBackend)
        try:
            assert "recording" in backend_names()
            backend = create_backend("recording", backend_amm)
            try:
                backend.recall_batch_seeded(request_codes[:2], request_seeds[:2])
                assert RecordingBackend.calls == 1
            finally:
                backend.close()
        finally:
            registry_module._REGISTRY.pop("recording", None)

    def test_register_rejects_bad_names(self):
        with pytest.raises(ValueError):
            register_backend("", SerialBackend)


class TestEngineSpec:
    def test_spec_pickles_without_factorisation(self, backend_amm):
        # Force a factorised engine into the module's solver first.
        backend_amm.solver.batch_engine.prepare(True)
        spec = EngineSpec.from_module(backend_amm, chunk_size=32)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.chunk_size == 32
        engine = clone.build_engine(prepare=False)
        assert not engine.prepared  # the factorisation never crossed the pickle
        engine.prepare(True)
        assert engine.prepared

    def test_rebuilt_engine_matches(self, backend_amm, request_codes, request_seeds):
        spec = pickle.loads(pickle.dumps(EngineSpec.from_module(backend_amm)))
        engine = spec.build_engine()
        rebuilt = spec.module.recognise_batch_seeded(
            request_codes, request_seeds, engine=engine
        )
        reference = backend_amm.recognise_batch_seeded(request_codes, request_seeds)
        assert np.array_equal(rebuilt.winner_column, reference.winner_column)
        assert np.array_equal(rebuilt.codes, reference.codes)
        np.testing.assert_allclose(
            rebuilt.column_currents, reference.column_currents, rtol=1e-12
        )

    def test_engine_getstate_drops_woodbury(self, backend_amm):
        engine = backend_amm.solver.batch_engine.prepare(True)
        state = engine.__getstate__()
        assert state["_woodbury_ready"] is False
        for key in ("_w_matrix", "_z_outputs", "_identity", "_g_term"):
            assert key not in state


class TestChunkTuning:
    def test_explicit_chunk_size_respected(self, backend_amm):
        spec = EngineSpec.from_module(backend_amm, chunk_size=7)
        engine = spec.build_engine()
        assert engine.chunk_size == 7

    def test_autotune_picks_candidate(self, backend_amm):
        engine = EngineSpec.from_module(backend_amm).build_engine()
        assert engine.chunk_size in engine.CHUNK_CANDIDATES

    def test_chunk_size_never_changes_outcomes(self, backend_amm, request_codes):
        """Chunking shifts BLAS rounding paths (GEMV vs GEMM) at the
        1e-16 level but never the solution: analog outputs agree to
        solver precision and the recognised winners are identical."""
        conductances = backend_amm.input_dacs.conductances(request_codes)
        solutions = []
        for chunk in (1, 5, 64):
            engine = EngineSpec.from_module(backend_amm, chunk_size=chunk).build_engine()
            solutions.append(engine.solve_batch(conductances))
        for other in solutions[1:]:
            np.testing.assert_allclose(
                solutions[0].column_currents, other.column_currents, rtol=1e-12
            )
            np.testing.assert_allclose(
                solutions[0].supply_current, other.supply_current, rtol=1e-12
            )
            assert np.array_equal(
                solutions[0].column_currents.argmax(axis=1),
                other.column_currents.argmax(axis=1),
            )


class TestCapabilities:
    def test_capability_shapes(self, backend_amm, process_pool):
        serial = SerialBackend(backend_amm)
        capabilities = serial.capabilities()
        assert capabilities == BackendCapabilities(
            name="serial", workers=1, shards_batches=False, escapes_gil=False
        )
        serial.close()
        processes = process_pool.capabilities()
        assert processes.name == "processes"
        assert processes.workers == 2
        assert processes.escapes_gil

    def test_backend_is_abstract(self):
        with pytest.raises(TypeError):
            RecallBackend()
