"""Tests for repro.utils.units."""

import pytest

from repro.utils import units

def test_si_prefixes_scale_correctly():
    assert units.kilo(2.0) == pytest.approx(2000.0)
    assert units.mega(1.5) == pytest.approx(1.5e6)
    assert units.giga(1.0) == pytest.approx(1e9)
    assert units.tera(1.0) == pytest.approx(1e12)
    assert units.milli(3.0) == pytest.approx(3e-3)
    assert units.micro(1.0) == pytest.approx(1e-6)
    assert units.nano(4.0) == pytest.approx(4e-9)
    assert units.pico(1.0) == pytest.approx(1e-12)
    assert units.femto(0.4) == pytest.approx(0.4e-15)


def test_prefixes_compose_to_identity():
    assert units.micro(units.mega(7.0)) == pytest.approx(7.0)
    assert units.nano(units.giga(3.0)) == pytest.approx(3.0)
    assert units.milli(units.kilo(9.0)) == pytest.approx(9.0)


def test_thermal_energy_matches_kT_at_300K():
    assert units.THERMAL_ENERGY_300K == pytest.approx(
        units.BOLTZMANN_CONSTANT * units.ROOM_TEMPERATURE_K
    )
    # kT at room temperature is about 4.14e-21 J (26 meV).
    assert units.THERMAL_ENERGY_300K == pytest.approx(4.14e-21, rel=0.01)


def test_emu_conversion():
    # The paper's 800 emu/cm^3 equals 8e5 A/m.
    assert units.emu_per_cm3_to_A_per_m(800.0) == pytest.approx(8.0e5)


def test_cubic_nanometres_volume():
    # Table 2 free layer: 3x22x60 nm^3 = 3960 nm^3 = 3.96e-24 m^3.
    volume = units.cubic_nanometres(3.0, 22.0, 60.0)
    assert volume == pytest.approx(3.96e-24)


def test_boltzmann_constant_value():
    assert units.BOLTZMANN_CONSTANT == pytest.approx(1.380649e-23)
