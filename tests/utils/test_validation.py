"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_in_range,
    check_integer,
    check_monotonic,
    check_positive,
    check_probability,
    check_shape,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3.5) == 3.5

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0.0)

    def test_allows_zero_when_requested(self):
        assert check_positive("x", 0.0, allow_zero=True) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -1.0, allow_zero=True)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            check_positive("x", float("nan"))
        with pytest.raises(ValueError):
            check_positive("x", float("inf"))


class TestCheckInRange:
    def test_accepts_inside(self):
        assert check_in_range("x", 0.5, 0.0, 1.0) == 0.5

    def test_accepts_bounds_when_inclusive(self):
        assert check_in_range("x", 0.0, 0.0, 1.0) == 0.0
        assert check_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_rejects_bounds_when_exclusive(self):
        with pytest.raises(ValueError):
            check_in_range("x", 0.0, 0.0, 1.0, inclusive=False)

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range("x", 2.0, 0.0, 1.0)


class TestCheckProbability:
    def test_accepts_probability(self):
        assert check_probability("p", 0.3) == 0.3

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_probability("p", 1.5)


class TestCheckShape:
    def test_accepts_exact_shape(self):
        array = np.zeros((3, 4))
        out = check_shape("a", array, (3, 4))
        assert out.shape == (3, 4)

    def test_wildcard_dimension(self):
        array = np.zeros((3, 4))
        check_shape("a", array, (-1, 4))

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError, match="dimensions"):
            check_shape("a", np.zeros(3), (3, 1))

    def test_rejects_wrong_size(self):
        with pytest.raises(ValueError, match="axis"):
            check_shape("a", np.zeros((3, 4)), (3, 5))


class TestCheckInteger:
    def test_accepts_int_valued_float(self):
        assert check_integer("n", 4.0) == 4

    def test_rejects_fractional(self):
        with pytest.raises(ValueError):
            check_integer("n", 4.5)

    def test_rejects_bool(self):
        with pytest.raises(ValueError):
            check_integer("n", True)

    def test_minimum_enforced(self):
        with pytest.raises(ValueError):
            check_integer("n", 1, minimum=2)


class TestCheckMonotonic:
    def test_accepts_increasing(self):
        out = check_monotonic("x", [1, 2, 3])
        assert list(out) == [1, 2, 3]

    def test_rejects_non_increasing(self):
        with pytest.raises(ValueError):
            check_monotonic("x", [1, 1, 2])

    def test_decreasing_mode(self):
        check_monotonic("x", [3, 2, 1], increasing=False)
        with pytest.raises(ValueError):
            check_monotonic("x", [1, 2], increasing=False)
