"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_children


def test_ensure_rng_from_int_is_deterministic():
    a = ensure_rng(42).random(5)
    b = ensure_rng(42).random(5)
    assert np.allclose(a, b)


def test_ensure_rng_passthrough_generator():
    generator = np.random.default_rng(1)
    assert ensure_rng(generator) is generator


def test_ensure_rng_none_gives_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_spawn_children_count_and_independence():
    parent = ensure_rng(7)
    children = spawn_children(parent, 4)
    assert len(children) == 4
    draws = [child.random(3) for child in children]
    # All child streams must differ from one another.
    for i in range(4):
        for j in range(i + 1, 4):
            assert not np.allclose(draws[i], draws[j])


def test_spawn_children_deterministic_given_parent_seed():
    first = [g.random() for g in spawn_children(ensure_rng(3), 3)]
    second = [g.random() for g in spawn_children(ensure_rng(3), 3)]
    assert first == second


def test_spawn_children_negative_count_rejected():
    with pytest.raises(ValueError):
        spawn_children(ensure_rng(0), -1)


def test_spawn_children_zero_count():
    assert spawn_children(ensure_rng(0), 0) == []
