"""Tests for repro.utils.quantize, including property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.quantize import (
    UniformQuantizer,
    bits_for_relative_resolution,
    quantize_to_levels,
    requantize_bits,
)


class TestUniformQuantizer:
    def test_levels_and_step(self):
        quantizer = UniformQuantizer(bits=5, minimum=0.0, maximum=1.0)
        assert quantizer.levels == 32
        assert quantizer.step == pytest.approx(1.0 / 31.0)

    def test_codes_cover_full_range(self):
        quantizer = UniformQuantizer(bits=3, minimum=0.0, maximum=1.0)
        codes = quantizer.to_codes(np.array([0.0, 1.0]))
        assert codes[0] == 0
        assert codes[1] == 7

    def test_out_of_range_values_clip(self):
        quantizer = UniformQuantizer(bits=4, minimum=0.0, maximum=1.0)
        codes = quantizer.to_codes(np.array([-5.0, 5.0]))
        assert codes[0] == 0
        assert codes[1] == 15

    def test_roundtrip_error_bounded_by_half_step(self):
        quantizer = UniformQuantizer(bits=5)
        values = np.linspace(0.0, 1.0, 101)
        reconstructed = quantizer.quantize(values)
        assert np.all(np.abs(reconstructed - values) <= quantizer.step / 2 + 1e-12)

    def test_relative_resolution_matches_paper_5bit_4pct(self):
        # 5 bits -> 1/31 = 3.2 %, which the paper rounds to its 4 % figure.
        quantizer = UniformQuantizer(bits=5)
        assert quantizer.relative_resolution() == pytest.approx(1 / 31)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            UniformQuantizer(bits=4, minimum=1.0, maximum=0.0)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            UniformQuantizer(bits=0)

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=50
        ),
        bits=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_codes_within_range(self, values, bits):
        quantizer = UniformQuantizer(bits=bits)
        codes = quantizer.to_codes(np.array(values))
        assert np.all(codes >= 0)
        assert np.all(codes <= quantizer.levels - 1)

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=50
        ),
        bits=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_quantization_idempotent(self, values, bits):
        quantizer = UniformQuantizer(bits=bits)
        once = quantizer.quantize(np.array(values))
        twice = quantizer.quantize(once)
        assert np.allclose(once, twice)

    @given(bits=st.integers(min_value=1, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_property_monotonic_codes(self, bits):
        quantizer = UniformQuantizer(bits=bits)
        values = np.linspace(0.0, 1.0, 257)
        codes = quantizer.to_codes(values)
        assert np.all(np.diff(codes) >= 0)


class TestQuantizeToLevels:
    def test_two_levels_is_threshold(self):
        out = quantize_to_levels(np.array([0.1, 0.9]), 2, 0.0, 1.0)
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)

    def test_values_land_on_grid(self):
        out = quantize_to_levels(np.linspace(0, 1, 11), 5, 0.0, 1.0)
        grid = np.linspace(0.0, 1.0, 5)
        for value in out:
            assert np.min(np.abs(grid - value)) < 1e-12

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            quantize_to_levels(np.array([0.5]), 1, 0.0, 1.0)


class TestRequantizeBits:
    def test_reduce_bits_shifts_right(self):
        codes = np.array([255, 128, 0])
        out = requantize_bits(codes, 8, 5)
        assert list(out) == [31, 16, 0]

    def test_increase_bits_shifts_left(self):
        codes = np.array([31, 1])
        out = requantize_bits(codes, 5, 8)
        assert list(out) == [248, 8]

    def test_same_bits_identity(self):
        codes = np.array([3, 7])
        assert list(requantize_bits(codes, 5, 5)) == [3, 7]

    @given(
        codes=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=20),
        to_bits=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_reduction_preserves_ordering(self, codes, to_bits):
        array = np.array(sorted(codes))
        out = requantize_bits(array, 8, to_bits)
        assert np.all(np.diff(out) >= 0)


class TestBitsForRelativeResolution:
    def test_four_percent_needs_five_bits(self):
        # The paper equates 4 % detection resolution with 5 bits.
        assert bits_for_relative_resolution(0.04) == 5

    def test_fifty_percent_needs_one_bit(self):
        assert bits_for_relative_resolution(1.0) == 1

    def test_finer_resolution_needs_more_bits(self):
        assert bits_for_relative_resolution(0.003) > bits_for_relative_resolution(0.03)

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            bits_for_relative_resolution(0.0)
