"""Test package: unique, fully-qualified test-module names."""
