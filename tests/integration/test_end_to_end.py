"""Integration tests across the full stack (dataset → AMM → analyses)."""

import numpy as np
import pytest

from repro.analysis.accuracy import ideal_matching_accuracy
from repro.cmos.digital_mac import DigitalCorrelatorAsic
from repro.cmos.mscmos_amm import MixedSignalAssociativeMemory
from repro.core.config import DesignParameters
from repro.core.pipeline import build_pipeline
from repro.core.power import SpinAmmPowerModel
from repro.datasets.features import build_templates, templates_to_matrix


class TestHardwareVsGoldenModel:
    def test_spin_amm_agrees_with_digital_golden_model(self, small_amm, small_template_codes):
        """The spin-CMOS AMM and the exact digital correlator must agree on
        the winner for inputs with clear margins (the stored templates)."""
        asic = DigitalCorrelatorAsic(
            feature_length=small_template_codes.shape[0],
            templates=small_template_codes.shape[1],
            bits=5,
            parallel_macs=8,
        )
        agreements = 0
        for column in range(small_template_codes.shape[1]):
            input_codes = small_template_codes[:, column]
            digital_winner, _ = asic.find_winner(small_template_codes, input_codes)
            spin_result = small_amm.recognise(input_codes)
            if digital_winner == spin_result.winner_column:
                agreements += 1
        assert agreements >= small_template_codes.shape[1] - 1

    def test_mscmos_baseline_agrees_on_clear_winners(self, small_amm, small_template_codes):
        mscmos = MixedSignalAssociativeMemory(small_amm.crossbar, seed=5)
        values = small_template_codes[:, 2].astype(float) / 31.0
        winner = mscmos.recognise(values)
        spin_result = small_amm.recognise(small_template_codes[:, 2])
        assert winner == spin_result.winner_column


class TestFullPipelineOnSyntheticFaces:
    def test_hardware_accuracy_tracks_ideal_accuracy(self, small_dataset, small_parameters):
        pipeline = build_pipeline(small_dataset, parameters=small_parameters, seed=2)
        evaluation = pipeline.evaluate(small_dataset)
        ideal = ideal_matching_accuracy(
            small_dataset,
            feature_shape=small_parameters.template_shape,
            bits=small_parameters.template_bits,
        )
        # The full hardware path (write error, DAC non-linearity, parasitics,
        # 5-bit WTA) must stay within a modest gap of the ideal comparison.
        assert evaluation.accuracy >= ideal.accuracy - 0.25
        assert evaluation.accuracy >= 0.7

    def test_random_noise_image_can_be_rejected(self, small_dataset, small_parameters):
        pipeline = build_pipeline(small_dataset, parameters=small_parameters, seed=2)
        rng = np.random.default_rng(0)
        # A very dark, unstructured image correlates weakly with every
        # stored face template, so its DOM falls below the threshold.
        noise_image = (rng.uniform(0, 0.1, small_dataset.image_shape) * 255).astype(np.uint8)
        noise_image[0, 0] = 255  # keep normalisation finite but mean tiny
        result = pipeline.classify_image(noise_image)
        assert result.dom_code <= pipeline.amm.wta.levels - 1

    def test_power_model_consistent_with_measured_static_power(
        self, small_dataset, small_parameters
    ):
        pipeline = build_pipeline(small_dataset, parameters=small_parameters, seed=2)
        result = pipeline.classify_image(small_dataset.images[0])
        model = SpinAmmPowerModel(pipeline.amm.parameters)
        breakdown = model.power_from_measurement(result.static_power, result.events)
        assert breakdown.total > 0
        # The measured static power of the reduced module sits within an
        # order of magnitude of the analytic estimate scaled to its size.
        analytic = model.breakdown().static_rcm
        assert 0.05 * analytic < result.static_power < 20 * analytic


class TestReproducibility:
    def test_same_seed_same_recognition(self, small_dataset, small_parameters):
        a = build_pipeline(small_dataset, parameters=small_parameters, seed=99)
        b = build_pipeline(small_dataset, parameters=small_parameters, seed=99)
        image = small_dataset.images[5]
        result_a = a.classify_image(image)
        result_b = b.classify_image(image)
        assert result_a.winner == result_b.winner
        assert result_a.dom_code == result_b.dom_code
        assert np.allclose(result_a.column_currents, result_b.column_currents)

    def test_different_write_seeds_change_conductances(self, small_dataset, small_parameters):
        a = build_pipeline(small_dataset, parameters=small_parameters, seed=1)
        b = build_pipeline(small_dataset, parameters=small_parameters, seed=2)
        assert not np.allclose(a.amm.crossbar.conductances, b.amm.crossbar.conductances)


class TestResolutionScaling:
    @pytest.mark.parametrize("bits", [3, 4, 5])
    def test_pipeline_works_at_all_table1_resolutions(
        self, small_dataset, bits
    ):
        parameters = DesignParameters(
            template_shape=(8, 4), num_templates=6, wta_resolution_bits=bits
        )
        pipeline = build_pipeline(small_dataset, parameters=parameters, seed=4)
        evaluation = pipeline.evaluate(small_dataset, limit=8)
        assert evaluation.accuracy >= 0.5
        assert pipeline.amm.wta.levels == 2**bits

    def test_templates_to_matrix_feeds_amm_consistently(self, small_dataset, small_extractor):
        templates = build_templates(small_dataset.images, small_dataset.labels, small_extractor)
        matrix, labels = templates_to_matrix(templates)
        assert matrix.shape[0] == small_extractor.feature_length
        assert matrix.shape[1] == small_dataset.num_classes
        assert np.all(matrix >= 0) and np.all(matrix <= small_extractor.max_code)
