"""Smoke tests for the shipped example scripts.

The examples are exercised end-to-end by running them manually (and the
heavier ones mirror the benchmarks), so these tests only verify that each
script imports cleanly and exposes a ``main`` entry point — catching broken
imports or signature drift without paying the full runtime.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_contains_expected_scripts():
    names = {path.stem for path in EXAMPLE_FILES}
    assert "quickstart" in names
    assert "face_recognition_full" in names
    assert "serving_demo" in names
    assert len(names) >= 3


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_imports_and_exposes_main(path):
    module = _load(path)
    assert hasattr(module, "main")
    assert callable(module.main)
    assert module.__doc__, "every example must carry a usage docstring"


def test_serving_demo_runs_end_to_end(capsys):
    """The serving demo boots a real server, serves concurrent traffic and
    shuts down cleanly — the one example cheap enough to execute fully."""
    module = _load(EXAMPLES_DIR / "serving_demo.py")
    exit_code = module.main(["--subjects", "6", "--requests", "12", "--concurrency", "3"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "serving on http://127.0.0.1:" in output
    assert "classified 12 images" in output
    assert "micro-batches" in output
    assert "clean shutdown" in output
