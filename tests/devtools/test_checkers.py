"""Per-rule tests: each checker fires on its known-bad fixture package,
stays quiet on the safe shapes in the same package, and is silenced by
inline suppressions."""

from pathlib import Path

from repro.devtools.lint import run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name, rules):
    return run_lint(root=FIXTURES / name, rules=list(rules))


class TestRng001:
    def test_global_stream_and_unseeded_rng_flagged(self):
        report = lint_fixture("rng_bad", ["RNG001"])
        messages = [f.message for f in report.findings]
        assert any("numpy.random.normal" in m for m in messages), messages
        assert any("without a seed" in m for m in messages), messages

    def test_findings_name_the_reachability_root(self):
        report = lint_fixture("rng_bad", ["RNG001"])
        assert all("seeded recall path" in f.message for f in report.findings)

    def test_seeded_construction_not_flagged(self):
        report = lint_fixture("rng_bad", ["RNG001"])
        lines = {f.line for f in report.findings}
        # _seeded_rng's explicit default_rng(SeedSequence(...)) never fires.
        assert not any(
            "SeedSequence" in (f.snippet or "") for f in report.findings
        ), report.findings
        assert len(lines) == 2  # exactly the two bad helpers


class TestWire001:
    def test_pickle_import_and_spec_field_flagged(self):
        report = lint_fixture("wire_bad", ["WIRE001"])
        rules_hit = [f.message for f in report.findings]
        assert any("pickle" in m for m in rules_hit), rules_hit
        assert any("factorisation" in m for m in rules_hit), rules_hit
        assert all(f.path == "backends/transport.py" for f in report.findings)


class TestAio001:
    def test_blocking_calls_in_async_defs_flagged(self):
        report = lint_fixture("aio_bad", ["AIO001"])
        messages = [f.message for f in report.findings]
        assert any("time.sleep" in m for m in messages), messages
        assert any("result()" in m for m in messages), messages
        assert any("socket recv" in m for m in messages), messages

    def test_findings_name_their_coroutine(self):
        report = lint_fixture("aio_bad", ["AIO001"])
        assert {f.symbol for f in report.findings} == {"drain", "fetch"}


class TestLock001:
    def test_bare_acquire_flagged_safe_shape_not(self):
        report = lint_fixture("lock_bad", ["LOCK001"])
        assert len(report.findings) == 1
        (finding,) = report.findings
        assert "acquire() without a guaranteed release" in finding.message
        # `held_safely` (acquire + try/finally) must not fire.
        assert "checkout" in open(
            FIXTURES / "lock_bad" / "backends" / "pool.py"
        ).read().splitlines()[finding.line - 2]


class TestTest001:
    def test_hardcoded_ports_flagged_port_zero_not(self):
        report = lint_fixture("ports_bad", ["TEST001"])
        messages = [f.message for f in report.findings]
        assert len(report.findings) == 3, messages
        assert any("literal port 8123" in m for m in messages), messages
        assert any("port=9000" in m for m in messages), messages
        assert any("'127.0.0.1:8124'" in m for m in messages), messages


class TestSuppressions:
    def test_inline_and_file_level_suppressions_silence_everything(self):
        report = run_lint(
            root=FIXTURES / "suppressed",
            rules=["WIRE001", "LOCK001", "TEST001"],
        )
        assert report.clean, [f.message for f in report.findings]
        assert report.suppressed == 4  # pickle + acquire + two ports
