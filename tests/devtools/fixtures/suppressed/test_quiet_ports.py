# repro-lint: disable-file=TEST001
"""Fixture: a whole-file suppression. Never collected — lint fodder."""

import socket


def test_fixed_port_one():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 8125))


def test_fixed_port_two(start_server):
    start_server(port=9001)
