"""Fixture: the same violations as the *_bad packages, silenced by
inline suppression directives. Never executed — lint fodder only."""

import pickle  # repro-lint: disable=WIRE001
import threading

_lock = threading.Lock()


def hold(block):
    # repro-lint: disable=LOCK001
    _lock.acquire()
    block()
    _lock.release()


def encode(obj):
    return pickle.dumps(obj)
