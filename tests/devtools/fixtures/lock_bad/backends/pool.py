"""Known-bad fixture for LOCK001: acquire without a guaranteed release.
Never executed — lint fodder only."""

import threading

_lock = threading.Lock()


def checkout(block):
    _lock.acquire()
    block()
    _lock.release()


def held_safely(block):
    _lock.acquire()
    try:
        block()
    finally:
        _lock.release()
