"""Known-bad fixture for TEST001: hard-coded ports in a test module.
Never collected by pytest (see tests/devtools/conftest.py) — lint fodder."""

import socket


def test_hardcoded_bind():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 8123))


def test_hardcoded_keyword(start_server):
    start_server(port=9000)


def test_hardcoded_endpoint(client):
    client.get("127.0.0.1:8124")


def test_port_zero_is_fine():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
