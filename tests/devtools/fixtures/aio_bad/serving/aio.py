"""Known-bad fixture for AIO001: blocking calls inside coroutine bodies.
Never executed — lint fodder only."""

import time


async def drain(future):
    time.sleep(0.05)
    return future.result()


async def fetch(sock):
    return sock.recv(1024)
