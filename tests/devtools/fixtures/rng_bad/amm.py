"""Known-bad fixture for RNG001: global-stream draws reachable from the
seeded recall root. Never executed — lint fodder only."""

import numpy as np


def _noise(scale):
    # Global numpy stream — breaks (module, codes, seed) purity.
    return np.random.normal(0.0, scale)


def _fresh_rng():
    # Unseeded default_rng() is fresh OS entropy.
    return np.random.default_rng()


def _seeded_rng(seed):
    # Explicitly seeded — allowed.
    return np.random.default_rng(np.random.SeedSequence(entropy=seed))


def recognise_batch_seeded(codes, seeds):
    rng = _seeded_rng(int(seeds[0]))
    return [rng.normal() + _noise(1.0) + _fresh_rng().normal() for _ in codes]
