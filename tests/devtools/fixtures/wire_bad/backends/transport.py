"""Known-bad fixture for WIRE001: pickle on the transport path and an
EngineSpec field carrying a factorisation. Never executed — lint fodder."""

import pickle
from dataclasses import dataclass
from typing import Optional


@dataclass
class EngineSpec:
    module: object
    chunk_size: Optional[int] = None
    # Solver state must never ride in the spec.
    factorisation: Optional["SuperLUFactor"] = None


def encode(spec):
    return pickle.dumps(spec)
