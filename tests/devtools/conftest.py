"""Keep the lint fixture tree out of pytest collection.

``fixtures/`` holds deliberately-broken modules (some named
``test_*.py`` so TEST001 scopes onto them); they are lint fodder, never
importable test code.
"""

collect_ignore_glob = ["*fixtures*"]
