"""Framework-level tests: project loading, suppressions, baseline,
output formats and CLI exit semantics of ``python -m repro lint``."""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.devtools.lint import all_rules, run_lint
from repro.devtools.lint.baseline import Baseline
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.project import Project
from repro.devtools.lint.runner import format_json, format_text, main as lint_main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

ALL_RULES = ("RNG001", "WIRE001", "AIO001", "LOCK001", "TEST001")


class TestRegistry:
    def test_all_five_rules_registered(self):
        assert set(ALL_RULES) <= set(all_rules())

    def test_unknown_rule_is_a_usage_error(self, capsys):
        code = lint_main(["--root", str(FIXTURES / "lock_bad"), "--rules", "NOPE999"])
        assert code == 2
        out = capsys.readouterr().out
        assert "NOPE999" in out and "LOCK001" in out  # names the known rules


class TestProject:
    def test_discovers_only_python_under_root(self):
        project = Project(FIXTURES / "lock_bad")
        assert set(project.files) == {"backends/pool.py"}

    def test_syntax_error_becomes_a_finding(self, tmp_path):
        (tmp_path / "broken.py").write_text("def half(:\n", encoding="utf-8")
        report = run_lint(root=tmp_path)
        assert [f.rule for f in report.findings] == ["SYNTAX"]
        assert report.findings[0].path == "broken.py"

    def test_explicit_path_overrides_default_excludes(self):
        # The default walk skips the fixtures tree, but naming a path
        # under it explicitly must still lint it.
        project = Project(
            REPO_ROOT, paths=["tests/devtools/fixtures/lock_bad"]
        )
        assert "tests/devtools/fixtures/lock_bad/backends/pool.py" in project.files

    def test_inline_suppressions_parsed(self):
        project = Project(FIXTURES / "suppressed")
        quiet = project.files["backends/quiet.py"]
        pickle_line = next(
            i for i, line in enumerate(quiet.lines, 1) if "import pickle" in line
        )
        assert quiet.is_suppressed("WIRE001", pickle_line)
        assert not quiet.is_suppressed("LOCK001", pickle_line)
        ports = project.files["test_quiet_ports.py"]
        assert ports.is_suppressed("TEST001", 9)  # file-level: any line


class TestBaseline:
    def _finding(self):
        return Finding(
            rule="TEST001",
            path="test_x.py",
            line=12,
            message="hard-coded port",
            snippet='sock.bind(("127.0.0.1", 8123))',
        )

    def test_round_trip_matches_on_snippet_not_line(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.write(path, [self._finding()])
        loaded = Baseline.load(path)
        moved = Finding(
            rule="TEST001",
            path="test_x.py",
            line=99,  # surrounding edits moved it
            message="hard-coded port",
            snippet='sock.bind(("127.0.0.1", 8123))',
        )
        assert loaded.matches(moved)

    def test_notes_survive_regeneration(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.write(path, [self._finding()])
        payload = json.loads(path.read_text())
        payload["findings"][0]["note"] = "kept on purpose"
        path.write_text(json.dumps(payload))
        Baseline.write(path, [self._finding()])  # regenerate
        assert json.loads(path.read_text())["findings"][0]["note"] == "kept on purpose"

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            Baseline.load(path)

    def test_baselined_findings_counted_not_listed(self, tmp_path):
        root = FIXTURES / "ports_bad"
        report = run_lint(root=root, rules=["TEST001"])
        assert report.findings
        path = tmp_path / "baseline.json"
        Baseline.write(path, report.findings)
        silenced = run_lint(root=root, rules=["TEST001"], baseline=Baseline.load(path))
        assert silenced.clean
        assert silenced.baselined == len(report.findings)


class TestFormats:
    def test_text_format_has_location_rule_and_summary(self):
        report = run_lint(root=FIXTURES / "lock_bad", rules=["LOCK001"])
        text = format_text(report)
        assert "backends/pool.py" in text
        assert "LOCK001" in text
        assert "finding(s)" in text

    def test_json_format_is_machine_readable(self):
        report = run_lint(root=FIXTURES / "lock_bad", rules=["LOCK001"])
        payload = json.loads(format_json(report))
        assert payload["files"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "LOCK001"
        assert finding["path"] == "backends/pool.py"
        assert isinstance(finding["line"], int)


class TestCliExitCodes:
    def test_findings_without_fail_flag_exit_zero(self, capsys):
        code = lint_main(["--root", str(FIXTURES / "lock_bad"), "--no-baseline"])
        assert code == 0
        assert "LOCK001" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "fixture", ["rng_bad", "wire_bad", "aio_bad", "lock_bad", "ports_bad"]
    )
    def test_fail_on_findings_exits_nonzero_on_each_violation_fixture(
        self, fixture, capsys
    ):
        code = lint_main(
            ["--root", str(FIXTURES / fixture), "--no-baseline", "--fail-on-findings"]
        )
        assert code == 1, capsys.readouterr().out

    def test_repro_cli_lint_subcommand(self, capsys):
        code = cli_main(
            ["lint", "--root", str(FIXTURES / "suppressed"), "--no-baseline"]
        )
        assert code == 0
        assert "suppressed" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        code = lint_main(["--list-rules"])
        assert code == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule in out

    def test_update_baseline_writes_file(self, capsys):
        # --baseline is resolved relative to --root.
        written = FIXTURES / "lock_bad" / "tmp-baseline.json"
        try:
            code = lint_main(
                [
                    "--root", str(FIXTURES / "lock_bad"),
                    "--baseline", "tmp-baseline.json",
                    "--update-baseline",
                ]
            )
            assert code == 0
            payload = json.loads(written.read_text())
            assert payload["findings"], "baseline should hold the LOCK001 finding"
        finally:
            written.unlink(missing_ok=True)


class TestRepoIsClean:
    def test_repo_lints_clean_under_committed_baseline(self):
        baseline = Baseline.load(REPO_ROOT / ".repro-lint-baseline.json")
        report = run_lint(root=REPO_ROOT, baseline=baseline)
        assert report.clean, format_text(report)

    def test_committed_baseline_entries_all_carry_notes(self):
        payload = json.loads(
            (REPO_ROOT / ".repro-lint-baseline.json").read_text()
        )
        for entry in payload["findings"]:
            assert entry["note"].strip(), f"baseline entry without a note: {entry}"
