"""Tests for the Table 1 / Fig. 13a power analyses."""

import pytest

from repro.analysis.power import build_table1, table1_by_design, threshold_power_sweep


@pytest.fixture(scope="module")
def table1():
    return build_table1()


class TestTable1:
    def test_all_designs_and_resolutions_present(self, table1):
        designs = {row.design for row in table1}
        assert len(designs) == 4
        resolutions = {row.resolution_bits for row in table1}
        assert resolutions == {3, 4, 5}
        assert len(table1) == 12

    def test_spin_design_is_energy_reference(self, table1):
        for row in table1:
            if row.design == "spin-CMOS PE":
                assert row.energy_ratio == pytest.approx(1.0)

    def test_mscmos_energy_ratio_order_of_100x(self, table1):
        # The paper reports 140-220x for the MS-CMOS designs.
        indexed = table1_by_design(table1)
        for design in ("[17] binary-tree WTA", "[18] async Min/Max BT-WTA"):
            for bits in (3, 4, 5):
                ratio = indexed[design][bits].energy_ratio
                assert 80 < ratio < 500

    def test_digital_energy_ratio_order_of_1000x(self, table1):
        indexed = table1_by_design(table1)
        for bits in (3, 4, 5):
            ratio = indexed["45nm digital CMOS"][bits].energy_ratio
            assert 800 < ratio < 6000

    def test_standard_bt_wta_costs_more_than_async(self, table1):
        indexed = table1_by_design(table1)
        for bits in (3, 4, 5):
            assert (
                indexed["[17] binary-tree WTA"][bits].power
                > indexed["[18] async Min/Max BT-WTA"][bits].power
            )

    def test_frequencies_match_paper(self, table1):
        indexed = table1_by_design(table1)
        assert indexed["spin-CMOS PE"][5].frequency == pytest.approx(100e6)
        assert indexed["[17] binary-tree WTA"][5].frequency == pytest.approx(50e6)
        assert indexed["45nm digital CMOS"][5].frequency == pytest.approx(2.5e6)

    def test_spin_power_values_near_paper(self, table1):
        indexed = table1_by_design(table1)
        assert indexed["spin-CMOS PE"][5].power == pytest.approx(65e-6, rel=0.25)
        assert indexed["spin-CMOS PE"][4].power == pytest.approx(45e-6, rel=0.25)
        assert indexed["spin-CMOS PE"][3].power == pytest.approx(32e-6, rel=0.3)

    def test_energy_consistent_with_power_and_frequency(self, table1):
        for row in table1:
            assert row.energy == pytest.approx(row.power / row.frequency)


class TestThresholdSweep:
    def test_fig13a_static_scales_dynamic_constant(self):
        thresholds = (0.25e-6, 0.5e-6, 1.0e-6, 2.0e-6)
        breakdowns = threshold_power_sweep(thresholds)
        statics = [b.static_total for b in breakdowns]
        dynamics = [b.dynamic for b in breakdowns]
        assert statics[0] < statics[-1]
        assert statics[-1] == pytest.approx(8 * statics[0], rel=1e-6)
        assert max(dynamics) == pytest.approx(min(dynamics))

    def test_fig13a_dynamic_dominates_at_small_threshold(self):
        breakdown = threshold_power_sweep([0.2e-6])[0]
        assert breakdown.dynamic > breakdown.static_total

    def test_sweep_length_matches_input(self):
        assert len(threshold_power_sweep([1e-6, 2e-6])) == 2
