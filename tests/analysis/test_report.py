"""Tests for the plain-text report formatters."""

from repro.analysis.accuracy import AccuracyPoint
from repro.analysis.margins import MarginPoint
from repro.analysis.power import build_table1
from repro.analysis.report import (
    format_accuracy_points,
    format_margin_points,
    format_power_breakdown,
    format_si,
    format_table,
    format_table1,
    format_table2,
)
from repro.core.config import default_parameters
from repro.core.power import SpinAmmPowerModel

class TestFormatSi:
    def test_microwatts(self):
        assert format_si(65e-6, "W") == "65uW"

    def test_milliwatts(self):
        assert format_si(5.5e-3, "W") == "5.5mW"

    def test_megahertz(self):
        assert format_si(100e6, "Hz") == "100MHz"

    def test_zero(self):
        assert format_si(0.0, "J") == "0J"

    def test_femtojoule_range(self):
        assert format_si(650e-15, "J").endswith("fJ")


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(line) >= len("a    bbbb") - 2 for line in lines)

    def test_format_table1_contains_designs(self):
        text = format_table1(build_table1(resolutions=(5,)))
        assert "spin-CMOS PE" in text
        assert "45nm digital CMOS" in text
        assert "Energy ratio" in text

    def test_format_power_breakdown(self):
        model = SpinAmmPowerModel()
        text = format_power_breakdown({"nominal": model.breakdown()})
        assert "nominal" in text
        assert "Dynamic" in text

    def test_format_accuracy_points(self):
        points = [AccuracyPoint(parameter=128, label="16x8", accuracy=0.97, tie_rate=0.01)]
        text = format_accuracy_points(points)
        assert "97.0%" in text

    def test_format_margin_points(self):
        points = [
            MarginPoint(parameter=1000.0, mean_margin=0.05, min_margin=0.02, mean_margin_ideal=0.06)
        ]
        text = format_margin_points(points, "Ohm")
        assert "5.00%" in text
        assert "Ohm" in text

    def test_format_table2_lists_parameters(self):
        text = format_table2(default_parameters().table2())
        assert "Template size" in text
        assert "16x8, 5-bit" in text
