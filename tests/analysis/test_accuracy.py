"""Tests for the matching-accuracy analyses (Fig. 3)."""

from repro.analysis.accuracy import (
    bit_width_sweep,
    downsizing_sweep,
    ideal_matching_accuracy,
    resolution_sweep,
)


class TestIdealMatchingAccuracy:
    def test_reasonable_accuracy_on_small_corpus(self, small_dataset):
        point = ideal_matching_accuracy(small_dataset, feature_shape=(8, 4), bits=5)
        assert 0.75 <= point.accuracy <= 1.0
        assert point.tie_rate <= 0.2

    def test_label_describes_configuration(self, small_dataset):
        point = ideal_matching_accuracy(small_dataset, feature_shape=(8, 4), bits=5)
        assert "8x4" in point.label
        assert "5-bit" in point.label

    def test_resolution_limited_accuracy_not_above_ideal(self, small_dataset):
        ideal = ideal_matching_accuracy(small_dataset, feature_shape=(8, 4), bits=5)
        coarse = ideal_matching_accuracy(
            small_dataset, feature_shape=(8, 4), bits=5, resolution_bits=3
        )
        assert coarse.accuracy <= ideal.accuracy + 1e-9


class TestDownsizingSweep:
    def test_fig3a_trend_accuracy_drops_with_aggressive_downsizing(self, small_dataset):
        # Fig. 3a: accuracy degrades as the stored image is shrunk.
        points = downsizing_sweep(
            small_dataset, feature_shapes=((32, 24), (16, 12), (8, 4), (4, 2)), bits=5
        )
        assert len(points) == 4
        accuracies = [point.accuracy for point in points]
        assert accuracies[0] >= accuracies[-1]
        assert max(accuracies) > 0.8

    def test_indivisible_shapes_skipped(self, small_dataset):
        points = downsizing_sweep(small_dataset, feature_shapes=((7, 5), (8, 4)), bits=5)
        assert len(points) == 1

    def test_parameter_field_is_feature_length(self, small_dataset):
        points = downsizing_sweep(small_dataset, feature_shapes=((8, 4),), bits=5)
        assert points[0].parameter == 32


class TestResolutionSweep:
    def test_fig3b_trend_accuracy_drops_with_coarser_detection(self, small_dataset):
        points = resolution_sweep(
            small_dataset, resolutions=(8, 5, 3, 1), feature_shape=(8, 4), bits=5
        )
        assert len(points) == 4
        accuracies = [point.accuracy for point in points]
        # Monotonically non-increasing as the detection gets coarser.
        assert all(a >= b - 0.05 for a, b in zip(accuracies, accuracies[1:]))
        assert accuracies[0] > accuracies[-1]

    def test_tie_rate_grows_with_coarser_detection(self, small_dataset):
        points = resolution_sweep(
            small_dataset, resolutions=(8, 2), feature_shape=(8, 4), bits=5
        )
        assert points[-1].tie_rate >= points[0].tie_rate

    def test_five_bit_close_to_ideal(self, small_dataset):
        # The paper selects 5-bit detection because accuracy stays close to
        # the ideal-comparison value.
        ideal = ideal_matching_accuracy(small_dataset, feature_shape=(8, 4), bits=5)
        five_bit = resolution_sweep(
            small_dataset, resolutions=(5,), feature_shape=(8, 4), bits=5
        )[0]
        assert five_bit.accuracy >= ideal.accuracy - 0.15


class TestBitWidthSweep:
    def test_bit_width_sweep_monotone_tail(self, small_dataset):
        points = bit_width_sweep(small_dataset, bit_widths=(8, 5, 2), feature_shape=(8, 4))
        assert len(points) == 3
        assert points[0].accuracy >= points[-1].accuracy - 0.1

    def test_labels_include_bits(self, small_dataset):
        points = bit_width_sweep(small_dataset, bit_widths=(5,), feature_shape=(8, 4))
        assert "5-bit" in points[0].label
