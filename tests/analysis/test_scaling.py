"""Tests for the array-size scaling analyses."""

import pytest

from repro.analysis.scaling import (
    FeatureLengthPoint,
    TemplateCountPoint,
    feature_length_sweep,
    template_count_sweep,
)
from repro.core.config import DesignParameters

class TestTemplateCountSweep:
    def test_sweep_length_and_fields(self):
        points = template_count_sweep((8, 16, 32))
        assert len(points) == 3
        for point in points:
            assert isinstance(point, TemplateCountPoint)
            assert point.spin_power > 0
            assert point.mscmos_power > point.spin_power
            assert point.power_ratio > 1

    def test_spin_power_grows_linearly_with_columns(self):
        points = template_count_sweep((10, 20, 40))
        p10, p20, p40 = (point.spin_power for point in points)
        # Static and per-column dynamic power both scale with the column
        # count, so doubling the columns roughly doubles the power.
        assert p20 / p10 == pytest.approx(2.0, rel=0.15)
        assert p40 / p20 == pytest.approx(2.0, rel=0.15)

    def test_ratio_stays_large_at_every_size(self):
        points = template_count_sweep((8, 40, 128))
        assert all(point.power_ratio > 30 for point in points)

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            template_count_sweep((1,))


class TestFeatureLengthSweep:
    def test_sweep_produces_points(self):
        parameters = DesignParameters(template_shape=(16, 1), num_templates=6)
        points = feature_length_sweep((16, 32, 64), templates=6, parameters=parameters, seed=3)
        assert len(points) == 3
        for point in points:
            assert isinstance(point, FeatureLengthPoint)
            assert point.static_power > 0
            assert -1.0 <= point.mean_margin <= 1.0

    def test_margins_positive_for_equal_energy_templates(self):
        parameters = DesignParameters(template_shape=(16, 1), num_templates=6)
        points = feature_length_sweep((32,), templates=6, parameters=parameters, seed=5)
        assert points[0].mean_margin > 0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            feature_length_sweep((2,), templates=4)
        with pytest.raises(ValueError):
            feature_length_sweep((16,), templates=1)

    def test_reproducible_with_seed(self):
        parameters = DesignParameters(template_shape=(16, 1), num_templates=4)
        a = feature_length_sweep((16,), templates=4, parameters=parameters, seed=9)
        b = feature_length_sweep((16,), templates=4, parameters=parameters, seed=9)
        assert a[0].mean_margin == pytest.approx(b[0].mean_margin)
