"""Tests for the process-variation analyses (Fig. 13b)."""

import numpy as np
import pytest

from repro.analysis.variations import (
    pd_ratio_sweep,
    spin_pipeline_accuracy_mc,
    wta_decision_error_rate,
)
from repro.cmos.wta_bt import BinaryTreeWta


class TestPdRatioSweep:
    def test_ratio_grows_with_sigma_vt(self):
        points = pd_ratio_sweep([5e-3, 10e-3, 20e-3])
        assert len(points) == 3
        ratios = [point.ratio_bt for point in points]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_reference_point_ratio_large(self):
        # Even at the near-ideal 5 mV corner the MS-CMOS designs pay a
        # two-orders-of-magnitude PD-product penalty.
        point = pd_ratio_sweep([5e-3])[0]
        assert point.ratio_bt > 50
        assert point.ratio_async > 30

    def test_async_design_ratio_below_standard_bt(self):
        point = pd_ratio_sweep([10e-3])[0]
        assert point.ratio_async < point.ratio_bt

    def test_invalid_sigma_rejected(self):
        with pytest.raises(ValueError):
            pd_ratio_sweep([0.0])


class TestWtaDecisionErrors:
    def test_large_margin_never_misranked(self):
        wta = BinaryTreeWta(inputs=2, sigma_vt=5e-3)
        assert wta_decision_error_rate(wta, margin=0.5, trials=100, seed=0) == 0.0

    def test_small_margin_sometimes_misranked_with_large_variation(self):
        wta = BinaryTreeWta(inputs=2, sigma_vt=40e-3, resolution_bits=5)
        error = wta_decision_error_rate(wta, margin=0.01, trials=200, seed=1)
        assert error > 0.0

    def test_error_rate_monotonic_in_margin(self):
        wta = BinaryTreeWta(inputs=2, sigma_vt=30e-3)
        small = wta_decision_error_rate(wta, margin=0.005, trials=300, seed=2)
        large = wta_decision_error_rate(wta, margin=0.2, trials=300, seed=2)
        assert large <= small

    def test_invalid_margin_rejected(self):
        with pytest.raises(ValueError):
            wta_decision_error_rate(BinaryTreeWta(inputs=2), margin=0.0)


class TestSpinPipelineMc:
    def test_mc_runs_and_summarises(self):
        def trial(rng: np.random.Generator) -> float:
            return 0.9 + 0.01 * rng.standard_normal()

        summary = spin_pipeline_accuracy_mc(trial, trials=8, seed=3)
        assert summary.values.shape == (8,)
        assert 0.8 < summary.mean < 1.0
        assert summary.minimum <= summary.mean <= summary.maximum
