"""Tests for the generic Monte-Carlo runner."""

import numpy as np
import pytest

from repro.analysis.montecarlo import MonteCarloRunner, MonteCarloSummary


class TestSummary:
    def test_summary_statistics(self):
        summary = MonteCarloSummary.from_values([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.percentile_5 <= summary.percentile_95

    def test_single_value_has_zero_std(self):
        summary = MonteCarloSummary.from_values([2.0])
        assert summary.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MonteCarloSummary.from_values([])


class TestRunner:
    def test_runner_collects_requested_trials(self):
        runner = MonteCarloRunner(lambda rng: rng.random(), trials=16, seed=1)
        summary = runner.run()
        assert summary.values.shape == (16,)
        assert 0.0 <= summary.mean <= 1.0

    def test_runner_reproducible_for_seed(self):
        a = MonteCarloRunner(lambda rng: rng.random(), trials=8, seed=2).run()
        b = MonteCarloRunner(lambda rng: rng.random(), trials=8, seed=2).run()
        assert np.allclose(a.values, b.values)

    def test_runner_trials_independent(self):
        summary = MonteCarloRunner(lambda rng: rng.random(), trials=32, seed=3).run()
        assert summary.std > 0

    def test_invalid_trials_rejected(self):
        with pytest.raises(ValueError):
            MonteCarloRunner(lambda rng: 0.0, trials=0)

    def test_gaussian_mean_estimation(self):
        runner = MonteCarloRunner(lambda rng: rng.normal(5.0, 1.0), trials=400, seed=4)
        summary = runner.run()
        assert summary.mean == pytest.approx(5.0, abs=0.2)
        assert summary.std == pytest.approx(1.0, rel=0.2)
