"""Tests for the generic Monte-Carlo runner."""

import numpy as np
import pytest

from repro.analysis.montecarlo import MonteCarloRunner, MonteCarloSummary


class TestSummary:
    def test_summary_statistics(self):
        summary = MonteCarloSummary.from_values([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.percentile_5 <= summary.percentile_95

    def test_single_value_has_zero_std(self):
        summary = MonteCarloSummary.from_values([2.0])
        assert summary.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MonteCarloSummary.from_values([])


class TestRunner:
    def test_runner_collects_requested_trials(self):
        runner = MonteCarloRunner(lambda rng: rng.random(), trials=16, seed=1)
        summary = runner.run()
        assert summary.values.shape == (16,)
        assert 0.0 <= summary.mean <= 1.0

    def test_runner_reproducible_for_seed(self):
        a = MonteCarloRunner(lambda rng: rng.random(), trials=8, seed=2).run()
        b = MonteCarloRunner(lambda rng: rng.random(), trials=8, seed=2).run()
        assert np.allclose(a.values, b.values)

    def test_runner_trials_independent(self):
        summary = MonteCarloRunner(lambda rng: rng.random(), trials=32, seed=3).run()
        assert summary.std > 0

    def test_invalid_trials_rejected(self):
        with pytest.raises(ValueError):
            MonteCarloRunner(lambda rng: 0.0, trials=0)

    def test_gaussian_mean_estimation(self):
        runner = MonteCarloRunner(lambda rng: rng.normal(5.0, 1.0), trials=400, seed=4)
        summary = runner.run()
        assert summary.mean == pytest.approx(5.0, abs=0.2)
        assert summary.std == pytest.approx(1.0, rel=0.2)


def _module_level_trial(rng):
    """Picklable trial for the processes execution backend."""
    return float(rng.normal(2.0, 0.5))


class TestExecutionBackends:
    """Trial chunks through the serial/threads/processes vocabulary."""

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            MonteCarloRunner(lambda rng: 0.0, backend="fibers")

    def test_threads_backend_matches_serial(self):
        def batch(generators):
            return [float(rng.random()) for rng in generators]

        serial = MonteCarloRunner(
            batch_trial=batch, trials=24, chunk_size=4, seed=9
        ).run()
        threaded = MonteCarloRunner(
            batch_trial=batch, trials=24, chunk_size=4, seed=9,
            backend="threads", workers=3,
        ).run()
        assert np.array_equal(serial.values, threaded.values)

    def test_parallel_batch_default_chunks_per_worker(self):
        """Without chunk_size a parallel backend must still fan out (one
        chunk per worker), not degrade to a single serial chunk."""
        seen_chunks = []

        def batch(generators):
            seen_chunks.append(len(generators))
            return [float(rng.random()) for rng in generators]

        serial = MonteCarloRunner(batch_trial=batch, trials=24, seed=9).run()
        assert seen_chunks == [24]
        seen_chunks.clear()
        threaded = MonteCarloRunner(
            batch_trial=batch, trials=24, seed=9, backend="threads", workers=3
        ).run()
        assert len(seen_chunks) == 3
        assert np.array_equal(serial.values, threaded.values)

    def test_threads_backend_scalar_trial(self):
        serial = MonteCarloRunner(_module_level_trial, trials=12, seed=5).run()
        threaded = MonteCarloRunner(
            _module_level_trial, trials=12, seed=5, backend="threads", workers=4
        ).run()
        assert np.array_equal(serial.values, threaded.values)

    def test_processes_backend_matches_serial(self):
        serial = MonteCarloRunner(_module_level_trial, trials=8, seed=6).run()
        processed = MonteCarloRunner(
            _module_level_trial, trials=8, seed=6, backend="processes", workers=2
        ).run()
        assert np.array_equal(serial.values, processed.values)

    def test_chunk_length_mismatch_detected(self):
        with pytest.raises(ValueError, match="returned"):
            MonteCarloRunner(
                batch_trial=lambda generators: [0.0], trials=8, chunk_size=4
            ).run()
