"""Tests for the detection-margin analyses (Fig. 9)."""

import numpy as np
import pytest

from repro.analysis.margins import (
    conductance_range_sweep,
    delta_v_sweep,
    detection_margins,
    optimal_resistance_range,
)
from repro.core.config import DesignParameters


@pytest.fixture(scope="module")
def margin_parameters():
    """A reduced design (32 features, 5 templates) for fast margin sweeps."""
    return DesignParameters(template_shape=(8, 4), num_templates=5)


@pytest.fixture(scope="module")
def margin_templates(margin_parameters):
    rng = np.random.default_rng(17)
    return rng.integers(
        0, 2**margin_parameters.template_bits,
        size=(margin_parameters.feature_length, margin_parameters.num_templates),
    )


class TestDetectionMargins:
    def test_margins_for_self_inputs_positive(self, small_amm, small_template_codes):
        columns = small_template_codes.shape[1]
        margins = detection_margins(
            small_amm,
            small_template_codes.T,
            true_columns=list(range(columns)),
            include_parasitics=True,
        )
        assert margins.shape == (columns,)
        assert np.mean(margins > 0) >= 0.8

    def test_parasitics_flag_restored(self, small_amm, small_template_codes):
        original = small_amm.include_parasitics
        detection_margins(
            small_amm, small_template_codes.T[:2], true_columns=[0, 1],
            include_parasitics=not original,
        )
        assert small_amm.include_parasitics == original


class TestConductanceRangeSweep:
    def test_sweep_produces_margin_points(self, margin_templates, margin_parameters):
        points = conductance_range_sweep(
            margin_templates,
            r_min_values=(200.0, 1000.0, 4000.0),
            parameters=margin_parameters,
            num_inputs=2,
            seed=3,
        )
        assert len(points) == 3
        for point in points:
            assert point.parameter in (200.0, 1000.0, 4000.0)
            assert -1.0 <= point.mean_margin <= 1.0
            assert point.min_margin <= point.mean_margin + 1e-12

    def test_ideal_margin_reported_alongside(self, margin_templates, margin_parameters):
        points = conductance_range_sweep(
            margin_templates, r_min_values=(1000.0,), parameters=margin_parameters,
            num_inputs=2, seed=3,
        )
        assert points[0].mean_margin_ideal >= points[0].mean_margin - 0.05

    def test_invalid_ratio_rejected(self, margin_templates, margin_parameters):
        with pytest.raises(ValueError):
            conductance_range_sweep(
                margin_templates, r_min_values=(1000.0,), resistance_ratio=-1.0,
                parameters=margin_parameters,
            )

    def test_optimal_range_selection(self, margin_templates, margin_parameters):
        points = conductance_range_sweep(
            margin_templates, r_min_values=(200.0, 1000.0), parameters=margin_parameters,
            num_inputs=2, seed=3,
        )
        best = optimal_resistance_range(points)
        assert best.mean_margin == max(point.mean_margin for point in points)

    def test_optimal_range_empty_rejected(self):
        with pytest.raises(ValueError):
            optimal_resistance_range([])


class TestDeltaVSweep:
    def test_margin_degrades_at_very_low_delta_v(self, margin_templates, margin_parameters):
        # Fig. 9b: reducing ΔV towards the parasitic-drop scale erodes the
        # detection margin.
        points = delta_v_sweep(
            margin_templates,
            delta_v_values=(30e-3, 2e-3),
            parameters=margin_parameters,
            num_inputs=2,
            seed=5,
        )
        assert len(points) == 2
        nominal, tiny = points
        assert tiny.mean_margin <= nominal.mean_margin + 0.02

    def test_invalid_delta_v_rejected(self, margin_templates, margin_parameters):
        with pytest.raises(ValueError):
            delta_v_sweep(
                margin_templates, delta_v_values=(0.0,), parameters=margin_parameters
            )
