"""Tests for the detection-margin analyses (Fig. 9)."""

import numpy as np
import pytest

from repro.analysis.margins import (
    conductance_range_sweep,
    delta_v_sweep,
    detection_margins,
    optimal_resistance_range,
)
from repro.core.config import DesignParameters


@pytest.fixture(scope="module")
def margin_parameters():
    """A reduced design (32 features, 5 templates) for fast margin sweeps."""
    return DesignParameters(template_shape=(8, 4), num_templates=5)


@pytest.fixture(scope="module")
def margin_templates(margin_parameters):
    rng = np.random.default_rng(17)
    return rng.integers(
        0, 2**margin_parameters.template_bits,
        size=(margin_parameters.feature_length, margin_parameters.num_templates),
    )


class TestDetectionMargins:
    def test_matches_point_by_point_solution(self, small_amm, small_template_codes):
        """The batched-engine path reproduces the per-sample crossbar solves.

        ``detection_margins`` routes the whole input set through
        ``column_solution_batch``; the margins must agree with solving
        each input through ``column_solution`` to solver precision, on
        both the parasitic and the ideal path.
        """
        inputs = small_template_codes.T
        true_columns = list(range(inputs.shape[0]))
        for include_parasitics in (True, False):
            batched = detection_margins(
                small_amm, inputs, true_columns, include_parasitics=include_parasitics
            )
            for index, (codes, true_column) in enumerate(zip(inputs, true_columns)):
                solution = small_amm.solver.solve(
                    small_amm.input_dacs.conductances(codes),
                    include_parasitics=include_parasitics,
                )
                currents = solution.column_currents
                true_current = currents[true_column]
                others = np.delete(currents, true_column)
                expected = (
                    -1.0
                    if true_current <= 0
                    else (true_current - others.max()) / true_current
                )
                assert batched[index] == pytest.approx(expected, rel=1e-8, abs=1e-12)

    def test_empty_input_batch(self, small_amm):
        margins = detection_margins(small_amm, np.empty((0, 32), dtype=int), [])
        assert margins.shape == (0,)

    def test_margins_for_self_inputs_positive(self, small_amm, small_template_codes):
        columns = small_template_codes.shape[1]
        margins = detection_margins(
            small_amm,
            small_template_codes.T,
            true_columns=list(range(columns)),
            include_parasitics=True,
        )
        assert margins.shape == (columns,)
        assert np.mean(margins > 0) >= 0.8

    def test_parasitics_flag_restored(self, small_amm, small_template_codes):
        original = small_amm.include_parasitics
        detection_margins(
            small_amm, small_template_codes.T[:2], true_columns=[0, 1],
            include_parasitics=not original,
        )
        assert small_amm.include_parasitics == original


class TestConductanceRangeSweep:
    def test_sweep_produces_margin_points(self, margin_templates, margin_parameters):
        points = conductance_range_sweep(
            margin_templates,
            r_min_values=(200.0, 1000.0, 4000.0),
            parameters=margin_parameters,
            num_inputs=2,
            seed=3,
        )
        assert len(points) == 3
        for point in points:
            assert point.parameter in (200.0, 1000.0, 4000.0)
            assert -1.0 <= point.mean_margin <= 1.0
            assert point.min_margin <= point.mean_margin + 1e-12

    def test_ideal_margin_reported_alongside(self, margin_templates, margin_parameters):
        points = conductance_range_sweep(
            margin_templates, r_min_values=(1000.0,), parameters=margin_parameters,
            num_inputs=2, seed=3,
        )
        assert points[0].mean_margin_ideal >= points[0].mean_margin - 0.05

    def test_invalid_ratio_rejected(self, margin_templates, margin_parameters):
        with pytest.raises(ValueError):
            conductance_range_sweep(
                margin_templates, r_min_values=(1000.0,), resistance_ratio=-1.0,
                parameters=margin_parameters,
            )

    def test_optimal_range_selection(self, margin_templates, margin_parameters):
        points = conductance_range_sweep(
            margin_templates, r_min_values=(200.0, 1000.0), parameters=margin_parameters,
            num_inputs=2, seed=3,
        )
        best = optimal_resistance_range(points)
        assert best.mean_margin == max(point.mean_margin for point in points)

    def test_optimal_range_empty_rejected(self):
        with pytest.raises(ValueError):
            optimal_resistance_range([])


class TestDeltaVSweep:
    def test_margin_degrades_at_very_low_delta_v(self, margin_templates, margin_parameters):
        # Fig. 9b: reducing ΔV towards the parasitic-drop scale erodes the
        # detection margin.
        points = delta_v_sweep(
            margin_templates,
            delta_v_values=(30e-3, 2e-3),
            parameters=margin_parameters,
            num_inputs=2,
            seed=5,
        )
        assert len(points) == 2
        nominal, tiny = points
        assert tiny.mean_margin <= nominal.mean_margin + 0.02

    def test_invalid_delta_v_rejected(self, margin_templates, margin_parameters):
        with pytest.raises(ValueError):
            delta_v_sweep(
                margin_templates, delta_v_values=(0.0,), parameters=margin_parameters
            )
