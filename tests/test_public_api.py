"""Tests of the package-level public API and the command-line interface."""

import pytest

import repro
from repro.cli import build_parser, main

class TestPublicApi:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_top_level_convenience_names(self):
        assert repro.DesignParameters is not None
        assert repro.AssociativeMemoryModule is not None
        assert callable(repro.load_default_dataset)
        assert callable(repro.build_pipeline)

    def test_default_parameters_factory(self):
        parameters = repro.default_parameters()
        assert parameters.num_templates == 40

    def test_subpackage_all_exports(self):
        from repro import analysis, cmos, crossbar, datasets, devices, extensions, utils

        for module in (analysis, cmos, crossbar, datasets, devices, extensions, utils):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestCli:
    def test_parser_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_quota_flags_build_config(self):
        import math

        from repro.cli import _build_quota

        parser = build_parser()
        # No quota flag: quotas disabled.
        arguments = parser.parse_args(["serve"])
        assert _build_quota(arguments) is None
        # --quota-burst alone must still enable quotas (infinite rate),
        # not silently drop the operator's burst cap.
        arguments = parser.parse_args(["serve", "--quota-burst", "10"])
        config = _build_quota(arguments)
        assert config is not None
        assert config.burst == 10 and math.isinf(config.rate)
        # Rate alone defaults burst to one second of rate.
        arguments = parser.parse_args(["serve", "--quota-rate", "50"])
        config = _build_quota(arguments)
        assert config.rate == 50 and config.burst == 50

    def test_table2_command(self, capsys):
        exit_code = main(["table2"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Template size" in captured
        assert "16x8, 5-bit" in captured

    def test_table1_command_with_custom_bits(self, capsys):
        exit_code = main(["table1", "--bits", "5"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "spin-CMOS PE" in captured
        assert "45nm digital CMOS" in captured
        assert "4-bit" not in captured

    def test_fig13a_command(self, capsys):
        exit_code = main(["fig13a", "--thresholds", "1.0", "0.5"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "threshold 1uA" in captured
        assert "Dynamic" in captured

    def test_accuracy_command_small_corpus(self, capsys):
        exit_code = main(["accuracy", "--subjects", "6", "--seed", "3"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Fig. 3a" in captured
        assert "Fig. 3b" in captured
        assert "%" in captured
