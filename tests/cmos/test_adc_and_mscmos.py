"""Tests for the CMOS SAR ADC model and the mixed-signal AMM baseline."""

import numpy as np
import pytest

from repro.cmos.adc import CmosSarAdc
from repro.cmos.mscmos_amm import MixedSignalAssociativeMemory
from repro.cmos.wta_async import AsyncMinMaxWta
from repro.crossbar.array import ResistiveCrossbar
from repro.crossbar.programming import TemplateProgrammer
from repro.devices.memristor import MemristorModel


def make_crossbar(rows=32, cols=6, seed=0):
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 32, size=(rows, cols))
    programmer = TemplateProgrammer(memristor=MemristorModel(write_accuracy=0.0))
    return ResistiveCrossbar.from_programmed(programmer.program(codes))


class TestCmosSarAdc:
    def test_energy_components_positive(self):
        adc = CmosSarAdc()
        assert adc.dac_energy_per_conversion() > 0
        assert adc.logic_energy_per_conversion() > 0
        assert adc.comparator_power() > 0

    def test_power_scales_with_channel_count(self):
        adc = CmosSarAdc()
        assert adc.power_for_bank(40) == pytest.approx(40 * adc.total_power())

    def test_energy_grows_with_resolution(self):
        assert CmosSarAdc(bits=8).energy_per_conversion() > CmosSarAdc(bits=4).energy_per_conversion()

    def test_cmos_adc_bank_far_more_power_than_spin_wta(self):
        # The paper's point: a conventional ADC per column would dwarf the
        # spin-neuron digitisation. A 40-channel CMOS SAR ADC bank at
        # 100 MS/s burns hundreds of microwatts to milliwatts, versus tens
        # of microwatts for the whole proposed module.
        bank_power = CmosSarAdc(bits=5, sample_rate=100e6).power_for_bank(40)
        assert bank_power > 200e-6

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CmosSarAdc(bits=0)


class TestMixedSignalAmm:
    def test_total_power_dominated_by_wta(self):
        crossbar = make_crossbar()
        amm = MixedSignalAssociativeMemory(crossbar)
        assert amm.wta.total_power() > 0.3 * amm.total_power()

    def test_total_power_milliwatt_scale(self):
        crossbar = make_crossbar()
        amm = MixedSignalAssociativeMemory(crossbar)
        assert 1e-3 < amm.total_power() < 50e-3

    def test_energy_per_recognition(self):
        crossbar = make_crossbar()
        amm = MixedSignalAssociativeMemory(crossbar)
        assert amm.energy_per_recognition() == pytest.approx(
            amm.total_power() / amm.wta.frequency
        )

    def test_rcm_static_power_scales_with_bias_voltage(self):
        crossbar = make_crossbar()
        low = MixedSignalAssociativeMemory(crossbar, rcm_bias_voltage=0.15)
        high = MixedSignalAssociativeMemory(crossbar, rcm_bias_voltage=0.3)
        assert high.rcm_static_power() == pytest.approx(4 * low.rcm_static_power(), rel=0.01)

    def test_mscmos_total_far_exceeds_spin_design_scale(self):
        # The whole MS-CMOS module sits in the milliwatt range, two to three
        # orders of magnitude above the proposed spin-CMOS module (~65 uW).
        crossbar = make_crossbar()
        amm = MixedSignalAssociativeMemory(crossbar)
        assert amm.total_power() > 20 * 65e-6

    def test_functional_recognition_clear_winner(self):
        rng = np.random.default_rng(3)
        codes = rng.integers(0, 32, size=(32, 4))
        codes[:, 2] = 31  # one very bright template
        crossbar = ResistiveCrossbar.from_programmed(
            TemplateProgrammer(memristor=MemristorModel(write_accuracy=0.0)).program(codes)
        )
        amm = MixedSignalAssociativeMemory(crossbar, seed=1)
        winner = amm.recognise(np.full(32, 1.0))
        assert winner == 2

    def test_custom_wta_must_match_columns(self):
        crossbar = make_crossbar(cols=6)
        with pytest.raises(ValueError):
            MixedSignalAssociativeMemory(crossbar, wta=AsyncMinMaxWta(inputs=8))

    def test_column_current_shape_validation(self):
        crossbar = make_crossbar()
        amm = MixedSignalAssociativeMemory(crossbar)
        with pytest.raises(ValueError):
            amm.column_currents(np.zeros(crossbar.rows + 1))
