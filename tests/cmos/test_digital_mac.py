"""Tests for the 45 nm digital MAC correlation ASIC baseline."""

import numpy as np
import pytest

from repro.cmos.digital_mac import DigitalCorrelatorAsic


@pytest.fixture(scope="module")
def asic():
    return DigitalCorrelatorAsic()


class TestThroughput:
    def test_macs_per_recognition(self, asic):
        assert asic.macs_per_recognition == 128 * 40

    def test_default_recognition_rate_is_2p5MHz(self, asic):
        # 128 parallel MACs at 100 MHz over 5120 MACs -> 2.5 MHz input rate,
        # matching Table 1's frequency for the digital design.
        assert asic.recognition_rate == pytest.approx(2.5e6)

    def test_more_parallelism_raises_rate(self):
        fast = DigitalCorrelatorAsic(parallel_macs=256)
        assert fast.recognition_rate == pytest.approx(5e6)

    def test_cycles_per_recognition_ceil(self):
        odd = DigitalCorrelatorAsic(parallel_macs=100)
        assert odd.cycles_per_recognition == 52


class TestEnergyPower:
    def test_power_near_4mW_at_5bit(self, asic):
        # Table 1: 4 mW for the 5-bit digital design.
        assert asic.total_power() == pytest.approx(4e-3, rel=0.25)

    def test_energy_per_recognition_about_1p6nJ(self, asic):
        assert asic.energy_per_recognition() == pytest.approx(1.6e-9, rel=0.3)

    def test_power_decreases_with_bit_width(self):
        powers = [DigitalCorrelatorAsic(bits=b).total_power() for b in (3, 4, 5)]
        assert powers[0] < powers[1] < powers[2]

    def test_mac_energy_grows_superlinearly_in_bits(self):
        # The multiplier array scales with bits^2 while the accumulator adds
        # a linear term; the 5-bit MAC must cost clearly more than the
        # 3-bit one (the paper's digital column shrinks even faster because
        # its accumulator width also shrinks with the operand width).
        e3 = DigitalCorrelatorAsic(bits=3).mac_energy()
        e5 = DigitalCorrelatorAsic(bits=5).mac_energy()
        assert 1.4 < e5 / e3 < 2.5

    def test_leakage_much_smaller_than_dynamic(self, asic):
        assert asic.leakage_power() < 0.2 * asic.total_power()

    def test_power_delay_product(self, asic):
        assert asic.power_delay_product() == pytest.approx(
            asic.total_power() / asic.recognition_rate
        )


class TestFunctionalGoldenModel:
    def _templates_and_input(self, asic, seed=0):
        rng = np.random.default_rng(seed)
        templates = rng.integers(0, 32, size=(asic.feature_length, asic.templates))
        input_codes = rng.integers(0, 32, size=asic.feature_length)
        return templates, input_codes

    def test_correlate_matches_numpy_dot(self, asic):
        templates, input_codes = self._templates_and_input(asic)
        correlations = asic.correlate(templates, input_codes)
        assert np.array_equal(correlations, input_codes @ templates)

    def test_find_winner_is_argmax(self, asic):
        templates, input_codes = self._templates_and_input(asic, seed=1)
        winner, score = asic.find_winner(templates, input_codes)
        expected = input_codes @ templates
        assert winner == int(np.argmax(expected))
        assert score == int(expected.max())

    def test_self_correlation_wins(self, asic):
        rng = np.random.default_rng(2)
        templates = rng.integers(0, 32, size=(asic.feature_length, asic.templates))
        winner, _ = asic.find_winner(templates, templates[:, 7])
        assert winner == 7

    def test_shape_validation(self, asic):
        templates, input_codes = self._templates_and_input(asic)
        with pytest.raises(ValueError):
            asic.correlate(templates[:-1], input_codes)
        with pytest.raises(ValueError):
            asic.correlate(templates, input_codes[:-1])

    def test_code_range_validation(self, asic):
        templates, input_codes = self._templates_and_input(asic)
        bad = templates.copy()
        bad[0, 0] = 99
        with pytest.raises(ValueError):
            asic.correlate(bad, input_codes)


class TestValidation:
    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DigitalCorrelatorAsic(bits=0)
        with pytest.raises(ValueError):
            DigitalCorrelatorAsic(core_clock=-1.0)
