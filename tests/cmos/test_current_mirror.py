"""Tests for the regulated current-mirror sizing/mismatch model."""

import numpy as np
import pytest

from repro.cmos.current_mirror import RegulatedCurrentMirror


class TestMismatchSizing:
    def test_required_accuracy_halves_per_bit(self):
        coarse = RegulatedCurrentMirror(resolution_bits=4)
        fine = RegulatedCurrentMirror(resolution_bits=5)
        assert fine.required_relative_accuracy() == pytest.approx(
            coarse.required_relative_accuracy() / 2
        )

    def test_area_upsizing_grows_with_resolution(self):
        assert (
            RegulatedCurrentMirror(resolution_bits=6).area_upsizing()
            > RegulatedCurrentMirror(resolution_bits=4).area_upsizing()
        )

    def test_area_upsizing_grows_with_sigma_vt(self):
        nominal = RegulatedCurrentMirror(sigma_vt_minimum=5e-3)
        noisy = RegulatedCurrentMirror(sigma_vt_minimum=15e-3)
        assert noisy.area_upsizing() == pytest.approx(9 * nominal.area_upsizing(), rel=0.01)

    def test_area_never_below_minimum(self):
        easy = RegulatedCurrentMirror(resolution_bits=1, sigma_vt_minimum=1e-3)
        assert easy.area_upsizing() >= 1.0

    def test_achieved_mismatch_meets_requirement(self):
        mirror = RegulatedCurrentMirror(resolution_bits=5, sigma_vt_minimum=5e-3)
        assert mirror.achieved_relative_mismatch() <= mirror.required_relative_accuracy() * 1.01

    def test_node_capacitance_grows_with_upsizing(self):
        small = RegulatedCurrentMirror(resolution_bits=3)
        large = RegulatedCurrentMirror(resolution_bits=6)
        assert large.node_capacitance() > small.node_capacitance()


class TestSpeedPower:
    def test_settling_time_inverse_in_bias_current(self):
        mirror = RegulatedCurrentMirror()
        assert mirror.settling_time(10e-6) == pytest.approx(2 * mirror.settling_time(20e-6))

    def test_minimum_bias_current_inverts_settling_time(self):
        mirror = RegulatedCurrentMirror()
        bias = mirror.minimum_bias_current(5e-9)
        assert mirror.settling_time(bias) == pytest.approx(5e-9, rel=1e-6)

    def test_static_power_linear_in_current_and_branches(self):
        mirror = RegulatedCurrentMirror()
        assert mirror.static_power(10e-6, branches=4) == pytest.approx(
            2 * mirror.static_power(10e-6, branches=2)
        )

    def test_invalid_inputs_rejected(self):
        mirror = RegulatedCurrentMirror()
        with pytest.raises(ValueError):
            mirror.settling_time(0.0)
        with pytest.raises(ValueError):
            mirror.static_power(-1e-6)


class TestFunctionalCopy:
    def test_copy_without_rng_is_exact(self):
        mirror = RegulatedCurrentMirror()
        assert mirror.copy(10e-6) == pytest.approx(10e-6)

    def test_copy_error_statistics(self):
        mirror = RegulatedCurrentMirror(resolution_bits=5, sigma_vt_minimum=5e-3)
        rng = np.random.default_rng(0)
        copies = np.array([mirror.copy(10e-6, rng) for _ in range(5000)])
        relative = copies / 10e-6 - 1.0
        assert abs(np.mean(relative)) < 0.005
        assert np.std(relative) == pytest.approx(mirror.achieved_relative_mismatch(), rel=0.1)

    def test_copy_never_negative(self):
        mirror = RegulatedCurrentMirror(sigma_vt_minimum=50e-3, resolution_bits=1)
        rng = np.random.default_rng(1)
        assert all(mirror.copy(1e-7, rng) >= 0 for _ in range(100))

    def test_negative_current_rejected(self):
        with pytest.raises(ValueError):
            RegulatedCurrentMirror().copy(-1e-6)
