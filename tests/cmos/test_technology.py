"""Tests for the digital CMOS energy primitives."""

import pytest

from repro.cmos.technology import CmosEnergyModel


@pytest.fixture(scope="module")
def model():
    return CmosEnergyModel()


class TestPrimitives:
    def test_inverter_energy_sub_femtojoule(self, model):
        assert 1e-17 < model.inverter_energy() < 1e-15

    def test_gate_energy_scales_with_complexity(self, model):
        assert model.gate_energy(3.0) == pytest.approx(2 * model.gate_energy(1.5))

    def test_flipflop_more_expensive_than_gate(self, model):
        assert model.flipflop_energy() > model.gate_energy()

    def test_invalid_gate_equivalents(self, model):
        with pytest.raises(ValueError):
            model.gate_energy(0.0)


class TestComposites:
    def test_adder_energy_linear_in_width(self, model):
        assert model.adder_energy(16) == pytest.approx(2 * model.adder_energy(8))

    def test_multiplier_energy_quadratic_in_width(self, model):
        assert model.multiplier_energy(8, 8) == pytest.approx(4 * model.multiplier_energy(4, 4))

    def test_mac_includes_multiplier_adder_register(self, model):
        mac = model.mac_energy(5)
        assert mac > model.multiplier_energy(5, 5)
        assert mac == pytest.approx(
            model.multiplier_energy(5, 5) + model.adder_energy(18) + model.register_energy(18)
        )

    def test_mac_energy_with_explicit_accumulator(self, model):
        assert model.mac_energy(5, accumulator_bits=20) > model.mac_energy(5, accumulator_bits=12)

    def test_comparator_energy_positive(self, model):
        assert model.comparator_energy(12) > 0

    def test_five_bit_mac_energy_plausible_for_45nm(self, model):
        # A 5-bit MAC datapath (before architecture overheads) should cost
        # tens of femtojoules at 45 nm.
        assert 5e-15 < model.mac_energy(5) < 2e-13


class TestLeakage:
    def test_leakage_scales_with_gate_count(self, model):
        assert model.leakage_power(2000) == pytest.approx(2 * model.leakage_power(1000))

    def test_leakage_positive(self, model):
        assert model.leakage_power(100) > 0


class TestValidation:
    def test_invalid_activity_rejected(self):
        with pytest.raises(ValueError):
            CmosEnergyModel(activity_factor=0.0)

    def test_invalid_wiring_overhead_rejected(self):
        with pytest.raises(ValueError):
            CmosEnergyModel(wiring_overhead=0.0)
