"""Tests for the analog WTA baselines ([17], [18], current-conveyor)."""

import numpy as np
import pytest

from repro.cmos.wta_async import AsyncMinMaxWta
from repro.cmos.wta_bt import BinaryTreeWta
from repro.cmos.wta_cc import CurrentConveyorWta


class TestStructure:
    def test_tree_node_count(self):
        wta = BinaryTreeWta(inputs=40)
        assert wta.comparison_nodes == 39
        assert wta.tree_depth == 6

    def test_total_branches(self):
        wta = BinaryTreeWta(inputs=40, branches_per_input=3, branches_per_node=3)
        assert wta.total_branches == 40 * 3 + 39 * 3

    def test_signal_path_stages(self):
        assert BinaryTreeWta(inputs=40).signal_path_stages() == 7

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            BinaryTreeWta(inputs=1)


class TestPowerCalibration:
    def test_bt_wta_power_near_8mW_at_5bit(self):
        # Table 1, [17]: 8 mW at 5-bit, 40 inputs, 50 MHz, sigma_vt = 5 mV.
        wta = BinaryTreeWta(inputs=40, resolution_bits=5)
        assert wta.total_power() == pytest.approx(8e-3, rel=0.2)

    def test_bt_wta_power_near_5mW_at_4bit(self):
        wta = BinaryTreeWta(inputs=40, resolution_bits=4)
        assert wta.total_power() == pytest.approx(5e-3, rel=0.2)

    def test_bt_wta_power_near_3mW_at_3bit(self):
        wta = BinaryTreeWta(inputs=40, resolution_bits=3)
        assert wta.total_power() == pytest.approx(3.2e-3, rel=0.25)

    def test_async_wta_power_near_5p5mW_at_5bit(self):
        # Table 1, [18]: 5.5 mW at 5-bit.
        wta = AsyncMinMaxWta(inputs=40, resolution_bits=5)
        assert wta.total_power() == pytest.approx(5.5e-3, rel=0.2)

    def test_async_wta_cheaper_than_standard_bt(self):
        for bits in (3, 4, 5):
            assert (
                AsyncMinMaxWta(inputs=40, resolution_bits=bits).total_power()
                < BinaryTreeWta(inputs=40, resolution_bits=bits).total_power()
            )

    def test_power_increases_with_resolution(self):
        powers = [BinaryTreeWta(inputs=40, resolution_bits=b).total_power() for b in (3, 4, 5)]
        assert powers[0] < powers[1] < powers[2]

    def test_power_increases_with_sigma_vt(self):
        nominal = BinaryTreeWta(inputs=40, sigma_vt=5e-3).total_power()
        noisy = BinaryTreeWta(inputs=40, sigma_vt=20e-3).total_power()
        assert noisy > 3 * nominal

    def test_energy_per_decision(self):
        wta = BinaryTreeWta(inputs=40, resolution_bits=5)
        assert wta.energy_per_decision() == pytest.approx(wta.total_power() / 50e6)

    def test_power_delay_product_grows_with_variation(self):
        nominal = BinaryTreeWta(inputs=40, sigma_vt=5e-3).power_delay_product()
        noisy = BinaryTreeWta(inputs=40, sigma_vt=25e-3).power_delay_product()
        assert noisy > 10 * nominal

    def test_evaluation_delay_positive_and_subperiod_at_reference(self):
        wta = BinaryTreeWta(inputs=40, resolution_bits=5, sigma_vt=5e-3)
        assert wta.evaluation_delay() > 0
        assert wta.max_frequency() > 0


class TestFunctionalWinner:
    def test_clear_winner_found_without_noise_effects(self):
        wta = BinaryTreeWta(inputs=8, sigma_vt=1e-3)
        currents = np.array([1, 2, 3, 10, 4, 5, 6, 7], dtype=float) * 1e-5
        assert wta.find_winner(currents, seed=0) == 3

    def test_non_power_of_two_inputs_handled(self):
        wta = BinaryTreeWta(inputs=5, sigma_vt=1e-3)
        currents = np.array([1, 2, 3, 4, 50], dtype=float) * 1e-6
        assert wta.find_winner(currents, seed=1) == 4

    def test_marginal_inputs_sometimes_misranked_at_high_sigma(self):
        wta = BinaryTreeWta(inputs=2, resolution_bits=5, sigma_vt=40e-3)
        currents = np.array([10.0e-6, 9.9e-6])
        rng = np.random.default_rng(2)
        winners = {wta.find_winner(currents, seed=rng) for _ in range(100)}
        assert winners == {0, 1}

    def test_invalid_currents_rejected(self):
        with pytest.raises(ValueError):
            BinaryTreeWta(inputs=4).find_winner(np.zeros((2, 2)))


class TestCurrentConveyor:
    def test_power_grows_with_fanin(self):
        small = CurrentConveyorWta(inputs=8)
        large = CurrentConveyorWta(inputs=64)
        assert large.total_power() > small.total_power()

    def test_power_grows_with_resolution(self):
        assert (
            CurrentConveyorWta(resolution_bits=6).total_power()
            > CurrentConveyorWta(resolution_bits=4).total_power()
        )

    def test_energy_per_decision_positive(self):
        assert CurrentConveyorWta().energy_per_decision() > 0

    def test_functional_winner_clear_case(self):
        wta = CurrentConveyorWta(inputs=5, sigma_vt=1e-3)
        currents = np.array([1, 2, 3, 4, 50], dtype=float) * 1e-6
        assert wta.find_winner(currents, seed=0) == 4

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            CurrentConveyorWta(inputs=1)
        with pytest.raises(ValueError):
            CurrentConveyorWta().find_winner(np.array([]))
